#include "obs/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/json.hpp"
#include "obs/run_manifest.hpp"
#include "obs/trace_event.hpp"
#include "util/env.hpp"

namespace rftc::obs::log {

namespace {

constexpr std::size_t kDefaultRingRecords = 256;
constexpr std::size_t kMinRingRecords = 16;
/// Upper bound on thread rings the lock-free table can register; threads
/// beyond it still reach the sinks, they just leave no flight-recorder
/// trail.  Fixed so a crash handler can walk the table with atomic loads.
constexpr int kMaxRings = 256;

/// One thread's bounded record ring.  Allocated on the thread's first
/// emit, registered once, never freed — the postmortem path may read it
/// after the owning thread exited.
struct Ring {
  Ring(std::size_t cap, std::uint32_t tid_in)
      : slots(new Record[cap]), capacity(cap), tid(tid_in) {}
  Record* slots;
  std::size_t capacity;
  std::atomic<std::uint64_t> written{0};
  std::uint32_t tid;
};

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<int> g_ring_count{0};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint32_t> g_next_tid{1};
std::atomic<std::size_t> g_ring_capacity{kDefaultRingRecords};

/// Fast-reject floor: the minimum of the default level and every override.
/// A record below this passes no subsystem's floor, so emit() bails on one
/// relaxed load.
std::atomic<int> g_min_level{static_cast<int>(Level::kInfo)};
std::atomic<bool> g_stderr_on{true};

struct Config {
  std::mutex mu;  // guards spec + the sink file
  LevelSpec spec;
  std::FILE* file = nullptr;
  std::string file_path;
};

Config& config() {
  static Config* c = new Config;  // leaked: usable from atexit handlers
  return *c;
}

void publish_min_level(const LevelSpec& spec) {
  int lo = static_cast<int>(spec.default_level);
  for (const auto& [_, level] : spec.overrides)
    lo = std::min(lo, static_cast<int>(level));
  g_min_level.store(lo, std::memory_order_relaxed);
}

std::once_flag g_env_once;

/// Opens/closes the sink file.  Shared by set_file_sink() and init_impl();
/// must NOT call init_from_env() — init_impl() runs inside the call_once,
/// and re-entering it there deadlocks.
bool set_file_sink_impl(const std::string& path_spec) {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.file != nullptr) {
    std::fclose(c.file);
    c.file = nullptr;
    c.file_path.clear();
  }
  if (path_spec.empty()) return true;
  const std::string path = resolve_artifact_path(path_spec);
  c.file = std::fopen(path.c_str(), "a");
  if (c.file == nullptr) {
    std::fprintf(stderr, "rftc::obs::log: cannot open log sink %s\n",
                 path.c_str());
    return false;
  }
  c.file_path = path;
  return true;
}

void init_impl() {
  if (const char* spec = std::getenv("RFTC_LOG")) {
    Config& c = config();
    std::lock_guard<std::mutex> lock(c.mu);
    c.spec = parse_spec(spec);
    publish_min_level(c.spec);
  }
  if (std::getenv("RFTC_LOG_RING") != nullptr)
    set_ring_capacity(env::read_count("RFTC_LOG_RING", ring_capacity()));
  if (const char* path = std::getenv("RFTC_LOG_FILE")) {
    if (path[0] != '\0') set_file_sink_impl(path);
  }
}

std::uint32_t local_tid() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

Ring* local_ring() {
  thread_local Ring* ring = nullptr;
  thread_local bool tried = false;
  if (!tried) {
    tried = true;
    const int idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (idx < kMaxRings) {
      ring = new Ring(std::max(g_ring_capacity.load(), kMinRingRecords),
                      local_tid());
      g_rings[idx].store(ring, std::memory_order_release);
    }
  }
  return ring;
}

/// Renders message + args into `out` (cap bytes incl. NUL); bounded,
/// always NUL-terminated.
void render_text(char* out, std::size_t cap, std::string_view message,
                 std::initializer_list<Arg> args) {
  std::size_t n = std::min(message.size(), cap - 1);
  std::memcpy(out, message.data(), n);
  out[n] = '\0';
  for (const Arg& a : args) {
    if (a.key == nullptr || n + 1 >= cap) break;
    int wrote;
    if (a.is_string) {
      wrote = std::snprintf(out + n, cap - n, " %s=%.*s", a.key,
                            static_cast<int>(a.str.size()), a.str.data());
    } else {
      wrote = std::snprintf(out + n, cap - n, " %s=%.6g", a.key, a.num);
    }
    if (wrote < 0) break;
    n = std::min(n + static_cast<std::size_t>(wrote), cap - 1);
  }
}

/// One JSONL sink line (no trailing newline).
std::string render_json(const Record& rec, std::string_view message,
                        std::initializer_list<Arg> args) {
  std::string out = "{\"ts_ns\":" + std::to_string(rec.ts_ns);
  out += ",\"tid\":" + std::to_string(rec.tid);
  out += ",\"level\":\"";
  out += level_name(rec.level);
  out += "\",\"subsystem\":" + json::quote(rec.subsystem);
  out += ",\"msg\":" + json::quote(message);
  bool any = false;
  for (const Arg& a : args) {
    if (a.key == nullptr) continue;
    out += any ? "," : ",\"args\":{";
    any = true;
    out += json::quote(a.key);
    out += ':';
    out += a.is_string ? json::quote(a.str) : json::number(a.num);
  }
  if (any) out += '}';
  out += '}';
  return out;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

bool parse_level(std::string_view text, Level& out) {
  for (const Level l : {Level::kTrace, Level::kDebug, Level::kInfo,
                        Level::kWarn, Level::kError, Level::kOff}) {
    if (text == level_name(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

Level LevelSpec::for_subsystem(std::string_view subsystem) const {
  Level level = default_level;
  // Overrides keep spec order, so scanning all of them makes a duplicated
  // key behave as "last one wins".
  for (const auto& [name, l] : overrides)
    if (name == subsystem) level = l;
  return level;
}

LevelSpec parse_spec(std::string_view spec) {
  LevelSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view element =
        spec.substr(pos, (comma == std::string_view::npos ? spec.size()
                                                          : comma) -
                             pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (element.empty()) continue;
    const std::size_t eq = element.find('=');
    Level level;
    if (eq == std::string_view::npos) {
      // Bare element: the default level.  A malformed one is skipped.
      if (parse_level(element, level)) out.default_level = level;
    } else {
      const std::string_view key = element.substr(0, eq);
      // Any subsystem name is accepted — an override for a subsystem that
      // never logs is harmless — but the key must be non-empty and the
      // level must parse.
      if (!key.empty() && parse_level(element.substr(eq + 1), level))
        out.overrides.emplace_back(std::string(key), level);
    }
  }
  return out;
}

void init_from_env() { std::call_once(g_env_once, init_impl); }

void configure(LevelSpec spec) {
  init_from_env();  // settle the env pass first so this call wins
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mu);
  c.spec = std::move(spec);
  publish_min_level(c.spec);
}

LevelSpec current_spec() {
  init_from_env();
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.spec;
}

bool set_file_sink(const std::string& path_spec) {
  init_from_env();
  return set_file_sink_impl(path_spec);
}

std::string file_sink_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.file_path;
}

void set_stderr_sink(bool on) {
  g_stderr_on.store(on, std::memory_order_relaxed);
}

bool enabled(std::string_view subsystem, Level level) {
  init_from_env();
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed))
    return false;
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mu);
  return level >= c.spec.for_subsystem(subsystem);
}

void emit(Level level, const char* subsystem, std::string_view message,
          std::initializer_list<Arg> args) {
  if (subsystem == nullptr || level == Level::kOff) return;
  if (!enabled(subsystem, level)) return;

  Record rec;
  rec.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.ts_ns = Tracer::global().now_ns();
  rec.tid = local_tid();
  rec.level = level;
  std::snprintf(rec.subsystem, sizeof rec.subsystem, "%s", subsystem);
  render_text(rec.text, sizeof rec.text, message, args);

  // Flight recorder first: even if a sink write crashes, the record is in
  // the ring the postmortem dump reads.  Fields land before the release
  // store of `written`, so a reader never sees an unwritten slot as valid.
  if (Ring* ring = local_ring()) {
    const std::uint64_t w = ring->written.load(std::memory_order_relaxed);
    ring->slots[static_cast<std::size_t>(w % ring->capacity)] = rec;
    ring->written.store(w + 1, std::memory_order_release);
  }

  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mu);
  if (g_stderr_on.load(std::memory_order_relaxed)) {
    char line[kRecordTextCap + 64];
    std::snprintf(line, sizeof line, "[%9.3fs] %c %-6s %s\n",
                  static_cast<double>(rec.ts_ns) / 1e9,
                  "TDIWE?"[static_cast<int>(level)], subsystem, rec.text);
    std::fputs(line, stderr);
  }
  if (c.file != nullptr) {
    const std::string json_line = render_json(rec, message, args);
    std::fwrite(json_line.data(), 1, json_line.size(), c.file);
    std::fputc('\n', c.file);
    std::fflush(c.file);
  }
}

void set_ring_capacity(std::size_t records) {
  g_ring_capacity.store(std::max(records, kMinRingRecords));
}

std::size_t ring_capacity() { return g_ring_capacity.load(); }

std::size_t flight_recorder_tail_unsafe(Record* out, std::size_t max) {
  if (out == nullptr || max == 0) return 0;
  std::size_t count = 0;
  const int rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (int i = 0; i < rings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t written =
        ring->written.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(written, ring->capacity);
    // Only the ring's own most recent `max` can make the global tail.
    const std::uint64_t take = std::min<std::uint64_t>(n, max);
    for (std::uint64_t k = written - take; k < written; ++k) {
      const Record& rec =
          ring->slots[static_cast<std::size_t>(k % ring->capacity)];
      if (rec.seq == 0) continue;
      // Keep `out` ascending by seq, holding the largest `max` seen.
      if (count == max) {
        if (rec.seq <= out[0].seq) continue;
        std::memmove(out, out + 1, (max - 1) * sizeof(Record));
        --count;
      }
      std::size_t pos = count;
      while (pos > 0 && out[pos - 1].seq > rec.seq) --pos;
      std::memmove(out + pos + 1, out + pos, (count - pos) * sizeof(Record));
      std::memcpy(out + pos, &rec, sizeof(Record));
      ++count;
    }
  }
  return count;
}

std::vector<Record> flight_recorder_tail(std::size_t max) {
  std::vector<Record> out(max);
  out.resize(flight_recorder_tail_unsafe(out.data(), max));
  return out;
}

std::uint64_t records_emitted() {
  return g_seq.load(std::memory_order_relaxed);
}

}  // namespace rftc::obs::log
