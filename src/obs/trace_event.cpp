#include "obs/trace_event.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "util/env.hpp"

namespace rftc::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kDefaultRingCapacity = 1 << 16;  // events per thread

}  // namespace

Tracer::Tracer() : capacity_(kDefaultRingCapacity), epoch_ns_(steady_now_ns()) {
  capacity_.store(
      env::read_count("RFTC_OBS_TRACE_CAPACITY", kDefaultRingCapacity));
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer;  // leaked: usable from atexit handlers
  return *t;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

Tracer::ThreadBuffer::ThreadBuffer(std::size_t capacity, std::uint32_t tid_in)
    : ring(capacity), tid(tid_in) {}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* tl = nullptr;
  if (tl == nullptr) {
    std::lock_guard lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        std::max<std::size_t>(capacity_.load(), 16), next_tid_++));
    tl = buffers_.back().get();
  }
  return *tl;
}

void Tracer::record(TraceEvent ev) {
  ThreadBuffer& b = local_buffer();
  ev.tid = b.tid;
  const std::uint64_t w = b.written.load(std::memory_order_relaxed);
  recorded_total_.fetch_add(1, std::memory_order_relaxed);
  if (w >= b.ring.size()) {
    // The slot still holds a live event: overwriting it is a drop.  Warn
    // exactly once per process so silent ring overwrites are visible even
    // to runs that never export the obs.trace.dropped_events gauge.
    if (dropped_total_.fetch_add(1, std::memory_order_relaxed) == 0)
      log::warn("obs", "trace events dropped (ring full)",
                {log::kv("ring_capacity", static_cast<double>(b.ring.size())),
                 log::kv("hint", "raise RFTC_OBS_TRACE_CAPACITY")});
  }
  b.ring[static_cast<std::size_t>(w % b.ring.size())] = ev;
  b.written.store(w + 1, std::memory_order_release);
}

void Tracer::instant(const char* cat, const char* name, TraceArg a,
                     TraceArg b, TraceArg c) {
  // trace_enabled() (not enabled()) so the first instant in a process still
  // arms the RFTC_OBS_* env sinks.
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.ts_ns = now_ns();
  for (const TraceArg& arg : {a, b, c})
    if (arg.key != nullptr) ev.args[ev.n_args++] = arg;
  record(ev);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& b : buffers_) {
      const std::uint64_t written = b->written.load(std::memory_order_acquire);
      const std::uint64_t n =
          std::min<std::uint64_t>(written, b->ring.size());
      for (std::uint64_t i = written - n; i < written; ++i)
        out.push_back(b->ring[static_cast<std::size_t>(i % b->ring.size())]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

namespace {

void append_event_json(std::string& out, const TraceEvent& ev) {
  out += "{\"name\":";
  out += json::quote(ev.name != nullptr ? ev.name : "?");
  out += ",\"cat\":";
  out += json::quote(ev.cat != nullptr ? ev.cat : "rftc");
  out += ",\"ph\":\"";
  out += ev.phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(ev.tid);
  // Chrome timestamps are microseconds; keep ns precision as a fraction.
  out += ",\"ts\":";
  out += json::number(static_cast<double>(ev.ts_ns) / 1e3);
  if (ev.phase == 'X') {
    out += ",\"dur\":";
    out += json::number(static_cast<double>(ev.dur_ns) / 1e3);
  }
  if (ev.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
  if (ev.n_args > 0) {
    out += ",\"args\":{";
    for (int i = 0; i < ev.n_args; ++i) {
      if (i > 0) out += ',';
      out += json::quote(ev.args[i].key);
      out += ':';
      out += json::number(ev.args[i].value);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string Tracer::chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    append_event_json(out, ev);
  }
  out += "]\n";
  return out;
}

std::string Tracer::jsonl() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out;
  for (const TraceEvent& ev : events) {
    append_event_json(out, ev);
    out += '\n';
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  for (const auto& b : buffers_)
    b->written.store(0, std::memory_order_relaxed);
}

void Tracer::set_ring_capacity(std::size_t events) {
  capacity_.store(std::max<std::size_t>(events, 16));
}

std::size_t Tracer::ring_capacity() const { return capacity_.load(); }

Span::Span(const char* cat, const char* name) : cat_(cat), name_(name) {
  if (trace_enabled()) {
    active_ = true;
    start_ = Tracer::global().now_ns();
  }
}

void Span::arg(const char* key, double value) {
  if (!active_ || n_args_ >= 3) return;
  args_[n_args_++] = {key, value};
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.phase = 'X';
  ev.ts_ns = start_;
  ev.dur_ns = tracer.now_ns() - start_;
  ev.n_args = n_args_;
  for (int i = 0; i < n_args_; ++i) ev.args[i] = args_[i];
  tracer.record(ev);
}

}  // namespace rftc::obs
