// rftc::obs metrics — low-overhead counters, gauges and streaming
// histograms, collectable into a process-global Registry.
//
// Design goals, in order:
//  1. Hot-path cost when observability is *off* must be a handful of relaxed
//     atomic operations (or nothing at all when compiled out with
//     RFTC_OBS_ENABLED=0), so the simulator's "fast as the hardware allows"
//     north star is not taxed by its own telemetry.
//  2. Metrics are usable both standalone (e.g. ControllerStats owns its
//     per-instance counters) and registered by name in the global Registry
//     for process-wide export (RFTC_OBS_METRICS=stderr|<file>).
//  3. Histograms are streaming: fixed memory, no per-sample allocation, and
//     p50/p95/p99 quantile estimates with a bounded relative error
//     (logarithmic buckets with 16 linear sub-buckets per octave, ~3%).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace rftc::obs {

/// Monotonically increasing event count.  Thread-safe, relaxed ordering.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar.  Thread-safe, relaxed ordering.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming histogram over non-negative samples (negative samples are
/// clamped into the sign bucket and only affect min/mean).  Buckets are
/// logarithmic — 16 linear sub-buckets per power of two spanning 2^-32 ..
/// 2^32 — so one instance covers picosecond durations through trace counts
/// with a worst-case quantile error of one sub-bucket (~3% of the value).
class Histogram {
 public:
  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  /// Quantile estimate for q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0, min = 0, max = 0, p50 = 0, p95 = 0, p99 = 0;
  };
  Snapshot snapshot() const;

  void reset();

  static constexpr int kSubBuckets = 16;
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 32;
  /// Bucket 0 holds v <= 0; buckets 1..N the geometric range (clamped).
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kSubBuckets + 1;

 private:
  static int bucket_for(double v);
  /// Midpoint of a bucket's value range (used as the quantile estimate).
  static double bucket_mid(int bucket);

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Process-global, name-keyed metric registry.  Registration takes a mutex;
/// returned references are stable for the process lifetime, so hot paths
/// should cache them (function-local static) and then pay only the metric's
/// own atomic cost.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
  /// Human-readable table (RFTC_OBS_METRICS=stderr).
  void write_text(std::FILE* out) const;

  /// Crash-path walk: visits every registered metric WITHOUT taking the
  /// registry mutex, passing exactly one non-null pointer per call.
  /// Best-effort by design — safe whenever no registration races the walk
  /// (metric references are stable and the maps only grow), which is the
  /// contract the async-signal post-mortem writer relies on.  Everyone
  /// else should use to_json()/write_text().
  void visit_unlocked(void (*fn)(void* ctx, const char* name,
                                 const Counter* counter, const Gauge* gauge,
                                 const Histogram* histogram),
                      void* ctx) const;

  /// Zeroes every registered metric (references stay valid).  For tests and
  /// for benches that want per-phase deltas.
  void reset_values();

  std::size_t metric_count() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace rftc::obs
