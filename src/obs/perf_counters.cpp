#include "obs/perf_counters.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rftc::obs {

const char* const kPerfEventNames[kPerfEventCount] = {
    "cycles", "instructions", "cache_misses", "branch_misses"};

PerfSample PerfSample::delta(const PerfSample& start, const PerfSample& end) {
  PerfSample d;
  if (!start.valid || !end.valid) return d;
  for (int i = 0; i < kPerfEventCount; ++i) {
    if (end.values[static_cast<std::size_t>(i)] <
        start.values[static_cast<std::size_t>(i)])
      return d;  // counter reset underneath us; drop the interval
    d.values[static_cast<std::size_t>(i)] =
        end.values[static_cast<std::size_t>(i)] -
        start.values[static_cast<std::size_t>(i)];
  }
  d.valid = true;
  return d;
}

#if defined(__linux__)
namespace {

int open_event(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr{};
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  // User-space cost of this process only: kernel/hypervisor exclusion also
  // keeps the open legal under perf_event_paranoid <= 2.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Count worker threads spawned after the open, not just the caller.
  attr.inherit = 1;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace
#endif

PerfCounters::PerfCounters() {
  if (const char* env = std::getenv("RFTC_OBS_PERF")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) return;
  }
#if defined(__linux__)
  constexpr std::uint64_t kConfigs[kPerfEventCount] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
  for (int i = 0; i < kPerfEventCount; ++i) {
    fds_[i] = open_event(PERF_TYPE_HARDWARE, kConfigs[i]);
    if (fds_[i] < 0) {
      // All or nothing: a partial event set would skew per-phase ratios.
      for (int j = 0; j < i; ++j) ::close(fds_[j]);
      for (int j = 0; j < kPerfEventCount; ++j) fds_[j] = -1;
      return;
    }
  }
  available_ = true;
#endif
}

PerfCounters& PerfCounters::global() {
  // Leaky singleton (like Registry): the fds live for the process and the
  // kernel reclaims them at exit, so no destructor-order hazards.
  static PerfCounters* p = new PerfCounters;
  return *p;
}

PerfSample PerfCounters::read() const {
  PerfSample s;
  if (!available_) return s;
#if defined(__linux__)
  for (int i = 0; i < kPerfEventCount; ++i) {
    std::uint64_t v = 0;
    if (::read(fds_[i], &v, sizeof v) != static_cast<ssize_t>(sizeof v))
      return PerfSample{};
    s.values[static_cast<std::size_t>(i)] = v;
  }
  s.valid = true;
#endif
  return s;
}

}  // namespace rftc::obs
