// rftc::pbt — a small seedable property-testing framework.
//
// The security argument of the reproduction rests on invariants ("the cipher
// is never clocked from an unlocked MMCM", "statistics are identical no
// matter how traces are chunked or sharded") that example-based tests probe
// only at hand-picked points.  This layer runs each invariant against a
// stream of generated inputs and, on failure, greedily shrinks the
// counterexample and prints a one-line reproducer:
//
//   [rftc::pbt] property 'dtw_symmetry' FALSIFIED at case 37/200
//   [rftc::pbt]   counterexample (after 12 shrink steps): len_a=3 len_b=1 ...
//   [rftc::pbt]   reproduce: RFTC_PBT_SEED=0x3f2a9d11c0ffee25 RFTC_PBT_CASES=1
//
// Replay contract: case i of a run with base seed B draws from an RNG seeded
// with splitmix64(B + i), so re-running with RFTC_PBT_SEED=B+i and
// RFTC_PBT_CASES=1 regenerates exactly the failing input as case 0.  The
// printed seed is that B+i.
//
// Knobs: RFTC_PBT_CASES overrides every property's case count (nightly CI
// turns it up), RFTC_PBT_SEED overrides the base seed (decimal or 0x-hex).
// Each property also has compiled-in defaults so a bare ctest run stays
// fast and deterministic.
//
// Deliberately tiny: properties are plain callables returning an error
// string (std::nullopt = pass), generators are callables T(Rng&), shrinkers
// are optional callables returning smaller candidates.  Everything integrates
// with gtest through a bool return — EXPECT_TRUE(pbt::check(...)).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rftc::pbt {

/// Per-case generator RNG.  Xoshiro seeded through SplitMix64, the same
/// seeding discipline the acquisition layer uses.
using Rng = Xoshiro256StarStar;

struct Config {
  std::size_t cases = 200;
  std::uint64_t seed = 0x5EEDBA5E;
  /// Bound on shrink candidate evaluations after a failure (a safety net so
  /// a pathological shrinker cannot hang a test).
  std::size_t max_shrink_attempts = 1000;

  /// Compiled-in defaults overridden by RFTC_PBT_CASES / RFTC_PBT_SEED.
  static Config from_env(std::uint64_t default_seed,
                         std::size_t default_cases = 200);
};

/// splitmix64(base + index): the seed actually fed to case `index`'s Rng.
std::uint64_t case_seed(std::uint64_t base, std::size_t index);

namespace detail {

void print_falsified(const std::string& name, std::size_t case_index,
                     std::size_t cases, std::uint64_t repro_seed,
                     const std::string& message,
                     const std::string& counterexample,
                     std::size_t shrink_steps);

}  // namespace detail

/// Runs `property` against `cfg.cases` generated inputs.  Returns true when
/// every case passes.  On the first failure, greedily shrinks the input
/// (first improving candidate wins, repeat until no candidate fails or the
/// attempt budget runs out), prints the reproducer line to stderr, and
/// returns false.
///
///   gen:      T(Rng&)                              — input generator
///   property: std::optional<std::string>(const T&) — nullopt = pass
///   shrink:   std::vector<T>(const T&)             — smaller candidates
///                                                    (optional)
///   show:     std::string(const T&)                — printer (optional)
template <typename T>
bool check(const std::string& name,
           const std::function<T(Rng&)>& gen,
           const std::function<std::optional<std::string>(const T&)>& property,
           const Config& cfg = {},
           const std::function<std::vector<T>(const T&)>& shrink = {},
           const std::function<std::string(const T&)>& show = {}) {
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    Rng rng(case_seed(cfg.seed, i));
    T input = gen(rng);
    std::optional<std::string> failure = property(input);
    if (!failure) continue;

    // Greedy shrink: walk toward a minimal failing input, re-checking the
    // property on every candidate so the reported counterexample still
    // falsifies it.
    std::size_t attempts = 0;
    std::size_t steps = 0;
    if (shrink) {
      bool improved = true;
      while (improved && attempts < cfg.max_shrink_attempts) {
        improved = false;
        for (T& candidate : shrink(input)) {
          if (++attempts > cfg.max_shrink_attempts) break;
          if (auto msg = property(candidate)) {
            input = std::move(candidate);
            failure = std::move(msg);
            ++steps;
            improved = true;
            break;
          }
        }
      }
    }

    std::string rendered;
    if (show) {
      rendered = show(input);
    } else {
      std::ostringstream os;
      os << "<no printer; pass a show fn for a rendered counterexample>";
      rendered = os.str();
    }
    detail::print_falsified(name, i, cfg.cases, cfg.seed + i, *failure,
                            rendered, steps);
    return false;
  }
  return true;
}

// ------------------------------------------------------------- shrinkers --
// Building blocks for the `shrink` argument.  All move toward a caller-given
// floor, halving the distance first (fast descent) and then stepping by one
// (minimality).

std::vector<std::int64_t> shrink_int(std::int64_t value, std::int64_t floor);
std::vector<std::uint64_t> shrink_uint(std::uint64_t value,
                                       std::uint64_t floor);
std::vector<double> shrink_real(double value, double floor);

/// Candidates for a vector: drop the second half, drop the first half, drop
/// one element, then shrink each element toward `floor` via shrink_elem.
template <typename T>
std::vector<std::vector<T>> shrink_vector(
    const std::vector<T>& v,
    const std::function<std::vector<T>(const T&)>& shrink_elem = {}) {
  std::vector<std::vector<T>> out;
  const std::size_t n = v.size();
  if (n > 1) {
    out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n / 2));
    out.emplace_back(v.begin() + static_cast<std::ptrdiff_t>(n / 2), v.end());
  }
  if (n > 0) out.emplace_back(v.begin() + 1, v.end());
  if (shrink_elem) {
    for (std::size_t i = 0; i < n; ++i) {
      for (T& cand : shrink_elem(v[i])) {
        std::vector<T> copy = v;
        copy[i] = std::move(cand);
        out.push_back(std::move(copy));
      }
    }
  }
  return out;
}

}  // namespace rftc::pbt
