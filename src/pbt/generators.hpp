// Domain generators for rftc::pbt.
//
// Header-only so the pbt library itself stays dependency-free: including a
// generator pulls in exactly the subsystem headers that generator needs, and
// the test binary already links every library.
//
// Each generator draws a uniformly distributed *valid* value — realizable
// MMCM configurations, in-range ADC traces, consistent chunk geometries —
// so properties test invariants, not input validation.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "aes/aes128.hpp"
#include "clocking/drp_codec.hpp"
#include "clocking/mmcm_config.hpp"
#include "fault/fault_spec.hpp"
#include "pbt/pbt.hpp"
#include "trace/power_model.hpp"

namespace rftc::pbt::gen {

// ---------------------------------------------------------------- scalars --

inline std::int64_t int_in(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  rng.uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

inline std::size_t size_in(Rng& rng, std::size_t lo, std::size_t hi) {
  return lo + static_cast<std::size_t>(rng.uniform(hi - lo + 1));
}

inline double real_in(Rng& rng, double lo, double hi) {
  return lo + rng.uniform01() * (hi - lo);
}

// ---------------------------------------------------------------- vectors --

inline std::vector<double> real_vector(Rng& rng, std::size_t min_len,
                                       std::size_t max_len, double lo,
                                       double hi) {
  std::vector<double> v(size_in(rng, min_len, max_len));
  for (double& x : v) x = real_in(rng, lo, hi);
  return v;
}

/// The ADC quantum of the default power model: 400 mV full scale over 8
/// bits = 1.5625 mV = 25·2⁻⁴, an exact dyadic rational.  Traces built from
/// it accumulate exactly in double — the foundation of the merge
/// bit-identity contract.
inline double adc_quantum_mv() {
  const trace::PowerModelParams params;
  return params.adc_full_scale_mv / (1 << params.adc_bits);
}

/// A trace exactly as the capture pipeline would produce it: every sample an
/// ADC code times the quantum.
inline std::vector<float> quantized_trace(Rng& rng, std::size_t samples,
                                          unsigned max_code = 255) {
  const double q = adc_quantum_mv();
  std::vector<float> t(samples);
  for (float& x : t)
    x = static_cast<float>(q * static_cast<double>(rng.uniform(max_code + 1)));
  return t;
}

inline aes::Block block(Rng& rng) {
  aes::Block b{};
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform(256));
  return b;
}

// ------------------------------------------------------------ trace sets --

/// A synthetic captured population: ciphertexts + quantized traces, the
/// inputs the CPA/Welch accumulators consume.
struct TraceBatch {
  std::size_t samples = 0;
  std::vector<aes::Block> ct;
  std::vector<std::vector<float>> traces;
  std::size_t size() const { return traces.size(); }
};

inline TraceBatch trace_batch(Rng& rng, std::size_t min_traces,
                              std::size_t max_traces, std::size_t min_samples,
                              std::size_t max_samples) {
  TraceBatch batch;
  batch.samples = size_in(rng, min_samples, max_samples);
  const std::size_t n = size_in(rng, min_traces, max_traces);
  batch.ct.reserve(n);
  batch.traces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.ct.push_back(block(rng));
    batch.traces.push_back(quantized_trace(rng, batch.samples));
  }
  return batch;
}

/// A partition of [0, n) into 1..max_parts contiguous shards (sizes sum to
/// n; empty shards allowed so boundary cases get exercised).
inline std::vector<std::size_t> shard_split(Rng& rng, std::size_t n,
                                            std::size_t max_parts) {
  const std::size_t parts = size_in(rng, 1, max_parts);
  std::vector<std::size_t> cuts;
  cuts.reserve(parts + 1);
  cuts.push_back(0);
  for (std::size_t i = 1; i < parts; ++i)
    cuts.push_back(static_cast<std::size_t>(rng.uniform(n + 1)));
  cuts.push_back(n);
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::size_t> sizes;
  sizes.reserve(parts);
  for (std::size_t i = 1; i < cuts.size(); ++i)
    sizes.push_back(cuts[i] - cuts[i - 1]);
  return sizes;
}

// ------------------------------------------------------- chunk geometries --

/// Geometry of a .rtst store: trace/sample counts plus an arbitrary chunk
/// size (deliberately including chunk_traces > n_traces and chunk sizes
/// that leave a ragged tail).
struct ChunkGeometry {
  std::size_t n_traces = 0;
  std::size_t n_samples = 0;
  std::size_t chunk_traces = 0;
};

inline ChunkGeometry chunk_geometry(Rng& rng, std::size_t max_traces = 160,
                                    std::size_t max_samples = 48) {
  ChunkGeometry g;
  g.n_traces = size_in(rng, 1, max_traces);
  g.n_samples = size_in(rng, 1, max_samples);
  g.chunk_traces = size_in(rng, 1, g.n_traces + 8);
  return g;
}

// ----------------------------------------------------------- MMCM configs --

/// A uniformly drawn configuration that is realizable by construction:
/// VCO pinned inside [600, 1200] MHz for fin = 24 MHz, dividers in range,
/// fractional division only on output 0.  (Moved here from the ad-hoc fuzz
/// loop that predated the pbt framework.)
inline clk::MmcmConfig realizable_mmcm_config(Rng& rng) {
  const clk::MmcmLimits limits;
  clk::MmcmConfig cfg;
  cfg.fin_mhz = 24.0;
  cfg.divclk = 1 + static_cast<int>(rng.uniform(2));
  // f_vco = 24 * (mult/8) / divclk in [600, 1200] =>
  // mult_8ths in [200*divclk, 400*divclk], clamped to the attribute limit.
  const int lo = 200 * cfg.divclk;
  const int hi = std::min(400 * cfg.divclk, limits.mult_max_8ths);
  cfg.mult_8ths = static_cast<int>(int_in(rng, lo, hi));
  for (int k = 0; k < clk::kMmcmOutputs; ++k) {
    if (k == 0) {
      // CLKOUT0_DIVIDE_F: any eighths value in [1.000, 128.000].
      cfg.out_div_8ths[0] = static_cast<int>(int_in(rng, 8, 128 * 8));
    } else {
      cfg.out_div_8ths[static_cast<std::size_t>(k)] =
          8 * static_cast<int>(int_in(rng, 1, 128));
    }
    cfg.out_enabled[static_cast<std::size_t>(k)] = (rng.next() & 1) != 0;
  }
  cfg.out_enabled[0] = true;
  return cfg;
}

/// Applies a write stream to a fresh 128-register image with the codec's
/// read-modify-write semantics.
inline std::array<std::uint16_t, 128> register_image(
    const std::vector<clk::DrpWrite>& writes) {
  std::array<std::uint16_t, 128> regs{};
  for (const clk::DrpWrite& w : writes)
    regs[w.addr] = static_cast<std::uint16_t>((regs[w.addr] & ~w.mask) |
                                              (w.data & w.mask));
  return regs;
}

/// The registers decode_config reads back.
inline std::vector<std::uint8_t> decoder_read_addresses() {
  std::vector<std::uint8_t> addrs;
  for (int k = 0; k < clk::kMmcmOutputs; ++k) {
    addrs.push_back(clk::drp_addr::clkout_reg1(k));
    addrs.push_back(clk::drp_addr::clkout_reg2(k));
  }
  addrs.push_back(clk::drp_addr::kClkFbReg1);
  addrs.push_back(clk::drp_addr::kClkFbReg2);
  addrs.push_back(clk::drp_addr::kDivClk);
  return addrs;
}

// ----------------------------------------------------------- fault streams --

/// A random fault environment: every family armed with a rate drawn up to
/// `max_rate`, salted from the case RNG so each case sees an independent
/// fault stream.  Timing-closure faults are left to the caller (they need a
/// matching frequency plan to be meaningful).
inline fault::FaultSpec fault_spec(Rng& rng, double max_rate = 0.5) {
  fault::FaultSpec spec;
  spec.drp_corrupt_rate = real_in(rng, 0.0, max_rate);
  spec.drp_drop_rate = real_in(rng, 0.0, max_rate);
  spec.lock_loss_rate = real_in(rng, 0.0, max_rate);
  spec.mux_glitch_rate = real_in(rng, 0.0, max_rate);
  spec.seed = rng.next();
  return spec;
}

}  // namespace rftc::pbt::gen
