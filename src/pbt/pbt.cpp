#include "pbt/pbt.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/env.hpp"

namespace rftc::pbt {

Config Config::from_env(std::uint64_t default_seed,
                        std::size_t default_cases) {
  Config cfg;
  cfg.cases = env::read_count("RFTC_PBT_CASES", default_cases);
  cfg.seed = env::read_u64("RFTC_PBT_SEED", default_seed);
  return cfg;
}

std::uint64_t case_seed(std::uint64_t base, std::size_t index) {
  // The scramble matters: raw `base + i` seeds would hand Xoshiro a run of
  // near-identical states.  SplitMix64 is the canonical seed expander for
  // it (and what the acquisition layer already uses).
  return SplitMix64(base + index).next();
}

namespace detail {

void print_falsified(const std::string& name, std::size_t case_index,
                     std::size_t cases, std::uint64_t repro_seed,
                     const std::string& message,
                     const std::string& counterexample,
                     std::size_t shrink_steps) {
  // stderr, not the logger: this must show up verbatim in ctest output so
  // the reproducer line can be copy-pasted.
  std::fprintf(stderr,
               "[rftc::pbt] property '%s' FALSIFIED at case %zu/%zu\n"
               "[rftc::pbt]   failure: %s\n"
               "[rftc::pbt]   counterexample (after %zu shrink steps): %s\n"
               "[rftc::pbt]   reproduce: RFTC_PBT_SEED=0x%" PRIx64
               " RFTC_PBT_CASES=1\n",
               name.c_str(), case_index, cases, message.c_str(), shrink_steps,
               counterexample.c_str(), repro_seed);
}

}  // namespace detail

namespace {

/// Intermediate offsets between the floor (tried first) and value-1 (tried
/// last), in ascending order: the halfway point, then a bisection ladder
/// approaching the value from below (value - distance/4, - distance/8, ...).
/// Greedy first-improvement over this ladder converges like binary search —
/// O(log² distance) property evaluations to reach the minimal failing value
/// — where a plain walk-down-by-one would exhaust the shrink budget.
std::vector<std::uint64_t> descent(std::uint64_t distance) {
  std::vector<std::uint64_t> deltas;
  if (distance >= 2) deltas.push_back(distance / 2);
  for (std::uint64_t gap = distance / 4; gap > 1; gap /= 2)
    deltas.push_back(distance - gap);
  return deltas;
}

}  // namespace

std::vector<std::int64_t> shrink_int(std::int64_t value, std::int64_t floor) {
  std::vector<std::int64_t> out;
  if (value <= floor) return out;
  const std::uint64_t distance =
      static_cast<std::uint64_t>(value) - static_cast<std::uint64_t>(floor);
  out.push_back(floor);
  for (const std::uint64_t d : descent(distance))
    out.push_back(floor + static_cast<std::int64_t>(d));
  out.push_back(value - 1);
  return out;
}

std::vector<std::uint64_t> shrink_uint(std::uint64_t value,
                                       std::uint64_t floor) {
  std::vector<std::uint64_t> out;
  if (value <= floor) return out;
  out.push_back(floor);
  for (const std::uint64_t d : descent(value - floor))
    out.push_back(floor + d);
  out.push_back(value - 1);
  return out;
}

std::vector<double> shrink_real(double value, double floor) {
  std::vector<double> out;
  if (!(value > floor)) return out;
  out.push_back(floor);
  out.push_back(floor + (value - floor) / 2.0);
  out.push_back(floor + (value - floor) / 16.0);
  return out;
}

}  // namespace rftc::pbt
