// RftcDevice: the end-to-end protected cryptographic device — the public
// entry point of this library.
//
// Wires together the AES round engine [11], the RFTC controller (planner +
// MMCM ping-pong) and exposes exactly what the threat model grants the
// adversary: plaintext in, ciphertext out, plus the per-encryption schedule
// and switching activity that the power-trace simulator turns into the
// "recorded power dissipation of the FPGA".
#pragma once

#include <memory>

#include "aes/round_engine.hpp"
#include "rftc/controller.hpp"
#include "sched/schedule.hpp"

namespace rftc::core {

/// One protected encryption: the functional result plus the physical
/// side-channel observables.
struct EncryptionRecord {
  aes::Block ciphertext{};
  sched::EncryptionSchedule schedule;
  aes::EncryptionActivity activity;
  /// State bits corrupted by fault injection (0 = correct AES output; see
  /// docs/ROBUSTNESS.md).  Plumbed through so the acquisition layer can
  /// count faulty traces without re-encrypting.
  int fault_flips = 0;
};

class RftcDevice {
 public:
  /// Builds a device from a frequency plan (see plan_frequencies) and a key.
  RftcDevice(const aes::Key& key, FrequencyPlan plan,
             ControllerParams params = {});

  /// Convenience: plans RFTC(M, P) with paper-default parameters.
  static RftcDevice make(const aes::Key& key, int m, int p,
                         std::uint64_t seed = 1);

  EncryptionRecord encrypt(const aes::Block& plaintext);

  RftcController& controller() { return *controller_; }
  const RftcController& controller() const { return *controller_; }
  const aes::KeySchedule& key_schedule() const {
    return engine_.key_schedule();
  }
  /// Engine-side (timing-closure) injector; null unless the timing family
  /// is armed in ControllerParams::faults.
  const fault::FaultInjector* engine_fault_injector() const {
    return engine_fault_.get();
  }

 private:
  aes::RoundEngine engine_;
  std::unique_ptr<RftcController> controller_;
  /// Timing-closure injector, salted independently of the controller's
  /// clocking injector so the families draw from disjoint streams.
  std::unique_ptr<fault::FaultInjector> engine_fault_;
  /// Scratch for the per-round crypto-clock periods handed to the engine
  /// (reused across encryptions to avoid per-call allocation).
  std::vector<Picoseconds> round_periods_;
};

/// A device clocked by an arbitrary scheduler — used to run the baseline
/// countermeasures and the unprotected reference through the identical
/// acquisition and attack pipeline.
class ScheduledAesDevice {
 public:
  ScheduledAesDevice(const aes::Key& key,
                     std::unique_ptr<sched::Scheduler> scheduler);

  EncryptionRecord encrypt(const aes::Block& plaintext);

  sched::Scheduler& scheduler() { return *scheduler_; }

 private:
  aes::RoundEngine engine_;
  std::unique_ptr<sched::Scheduler> scheduler_;
};

}  // namespace rftc::core
