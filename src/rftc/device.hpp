// RftcDevice: the end-to-end protected cryptographic device — the public
// entry point of this library.
//
// Wires together the AES round engine [11], the RFTC controller (planner +
// MMCM ping-pong) and exposes exactly what the threat model grants the
// adversary: plaintext in, ciphertext out, plus the per-encryption schedule
// and switching activity that the power-trace simulator turns into the
// "recorded power dissipation of the FPGA".
#pragma once

#include <memory>

#include "aes/round_engine.hpp"
#include "rftc/controller.hpp"
#include "sched/schedule.hpp"

namespace rftc::core {

/// One protected encryption: the functional result plus the physical
/// side-channel observables.
struct EncryptionRecord {
  aes::Block ciphertext{};
  sched::EncryptionSchedule schedule;
  aes::EncryptionActivity activity;
};

class RftcDevice {
 public:
  /// Builds a device from a frequency plan (see plan_frequencies) and a key.
  RftcDevice(const aes::Key& key, FrequencyPlan plan,
             ControllerParams params = {});

  /// Convenience: plans RFTC(M, P) with paper-default parameters.
  static RftcDevice make(const aes::Key& key, int m, int p,
                         std::uint64_t seed = 1);

  EncryptionRecord encrypt(const aes::Block& plaintext);

  RftcController& controller() { return *controller_; }
  const RftcController& controller() const { return *controller_; }
  const aes::KeySchedule& key_schedule() const {
    return engine_.key_schedule();
  }

 private:
  aes::RoundEngine engine_;
  std::unique_ptr<RftcController> controller_;
};

/// A device clocked by an arbitrary scheduler — used to run the baseline
/// countermeasures and the unprotected reference through the identical
/// acquisition and attack pipeline.
class ScheduledAesDevice {
 public:
  ScheduledAesDevice(const aes::Key& key,
                     std::unique_ptr<sched::Scheduler> scheduler);

  EncryptionRecord encrypt(const aes::Block& plaintext);

  sched::Scheduler& scheduler() { return *scheduler_; }

 private:
  aes::RoundEngine engine_;
  std::unique_ptr<sched::Scheduler> scheduler_;
};

}  // namespace rftc::core
