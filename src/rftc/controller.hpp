// RftcController: the runtime half of RFTC (paper §4, Fig. 1 & Fig. 2-B).
//
// N MMCMs ping-pong: one drives the AES clock mux while another is being
// rewritten over its DRP port with a configuration fetched from Block RAM at
// an LFSR-chosen index.  Because MMCM reconfiguration (~34 us at a 24 MHz
// DRP clock) is much longer than one encryption, x ≈ 82 encryptions run per
// frequency set; each encryption's rounds are individually clocked by an
// LFSR-chosen output of the active MMCM through a glitch-free BUFG mux.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "clocking/block_ram.hpp"
#include "clocking/clock_mux.hpp"
#include "clocking/drp_controller.hpp"
#include "clocking/mmcm_model.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "rftc/frequency_planner.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace rftc::core {

/// What the controller does when a reconfiguration fails to produce a
/// trustworthy lock (docs/ROBUSTNESS.md).  The invariant the policy
/// enforces: encryption never runs from an unlocked clock — a failed
/// reconfiguration can only ever cost schedule entropy (the fallback holds
/// the last-locked MMCM instead of swapping), never correctness.
struct RecoveryPolicy {
  /// DRP rewrite attempts after the first failure before falling back.
  int max_retries = 3;
  /// Watchdog deadline = max(watchdog_floor_ps, factor x expected lock
  /// time of the intended configuration).
  double watchdog_factor = 1.5;
  /// Never declare a lock failed before the paper's §5 reconfiguration
  /// figure (34 us at the 24 MHz DRP clock) has comfortably passed.
  Picoseconds watchdog_floor_ps = 34 * kPicosPerMicro;
  /// Delay before the first retry; doubles with every further retry.
  Picoseconds backoff_base_ps = 8 * kPicosPerMicro;
  /// Compare the relocked MMCM's latched configuration against the
  /// intended Block-RAM entry before trusting the lock (catches corrupted
  /// images that still decode to a *valid but wrong* configuration).
  bool verify_readback = true;
};

/// Watchdog deadline for one reconfiguration attempt: how long after reset
/// release the controller waits for LOCKED before declaring the attempt
/// failed.  Exposed as a free function so the 34 us floor is testable in
/// isolation.
Picoseconds recovery_watchdog_deadline_ps(const RecoveryPolicy& policy,
                                          Picoseconds expected_lock_ps);

struct ControllerParams {
  /// N — number of MMCMs (>= 2 for uninterrupted operation; the paper's
  /// board uses 2).
  int n_mmcms = 2;
  /// Seed of the 128-bit LFSR choosing configurations and round clocks.
  std::uint64_t lfsr_seed_lo = 0xACE1ACE1ACE1ACE1ULL;
  std::uint64_t lfsr_seed_hi = 0x1;
  /// Charge glitch-free BUFG switch dead time between rounds (off in the
  /// paper's completion-time arithmetic; on for the ablation bench).
  bool model_switch_overhead = false;
  /// Fault injection (default: everything disarmed — the controller takes
  /// code paths bit-identical to a fault-free build).
  fault::FaultSpec faults{};
  /// Applied when a reconfiguration fails (only reachable with faults).
  RecoveryPolicy recovery{};
};

/// Per-instance runtime telemetry, backed by the rftc::obs metric
/// primitives.  The controller also mirrors every update into the global
/// obs::Registry under "rftc.*" (see docs/OBSERVABILITY.md), so a process
/// running many devices still gets one aggregate export; the instance-local
/// values here preserve the historical stats() accessor semantics.
class ControllerStats {
 public:
  std::uint64_t encryptions() const { return encryptions_.value(); }
  /// DRP reconfiguration sequences executed, including faulted attempts
  /// that were retried (reconfigurations() - lock_failures() succeeded).
  std::uint64_t reconfigurations() const { return reconfigurations_.value(); }
  std::uint64_t total_drp_transactions() const {
    return drp_transactions_.value();
  }
  Picoseconds last_reconfig_duration_ps() const {
    return static_cast<Picoseconds>(last_reconfig_ps_.value());
  }
  /// Mean MMCM rewrite+relock duration across all reconfigurations.
  double mean_reconfig_duration_ps() const {
    return reconfig_duration_ps_.mean();
  }
  /// Full duration distribution (p50/p95/p99 via obs::Histogram).
  const obs::Histogram& reconfig_duration_histogram() const {
    return reconfig_duration_ps_;
  }

  /// Ping-pong slack: how long each freshly reconfigured MMCM sat locked
  /// and idle before the swap promoted it (Fig. 2-B headroom — a shrinking
  /// slack means reconfiguration is about to stall the cipher clock).
  const obs::Histogram& reconfig_slack_histogram() const {
    return reconfig_slack_ps_;
  }

  // --- Recovery telemetry (docs/ROBUSTNESS.md) ---------------------------
  /// Reconfiguration attempts that failed to produce a trustworthy lock
  /// (watchdog expiry or readback mismatch).
  std::uint64_t lock_failures() const { return lock_failures_.value(); }
  /// Backed-off DRP rewrites issued after a failure.
  std::uint64_t recovery_retries() const { return recovery_retries_.value(); }
  /// Swap windows where retries were exhausted and the last-locked MMCM
  /// was held on the mux instead of ping-ponging.
  std::uint64_t fallbacks() const { return fallbacks_.value(); }
  /// First failure → eventual healthy lock, per recovered incident.
  const obs::Histogram& recovery_latency_histogram() const {
    return recovery_latency_ps_;
  }

  /// Mean encryptions completed per reconfiguration interval (paper: ~82).
  ///
  /// Ping-pong invariant: the controller constructor immediately sends one
  /// MMCM off to reconfigure, so reconfigurations() >= 1 over the whole
  /// lifetime of a controller — this can never divide by zero, and a zero
  /// result genuinely means "no encryptions ran" rather than silently
  /// masking a stalled ping-pong.
  double encryptions_per_reconfig() const {
    assert(reconfigurations() >= 1 &&
           "ping-pong invariant: ctor starts the first reconfiguration");
    return static_cast<double>(encryptions()) /
           static_cast<double>(reconfigurations());
  }

 private:
  friend class RftcController;
  obs::Counter encryptions_;
  obs::Counter reconfigurations_;
  obs::Counter drp_transactions_;
  obs::Gauge last_reconfig_ps_;
  obs::Histogram reconfig_duration_ps_;
  obs::Histogram reconfig_slack_ps_;
  obs::Counter lock_failures_;
  obs::Counter recovery_retries_;
  obs::Counter fallbacks_;
  obs::Histogram recovery_latency_ps_;
};

class RftcController final : public sched::Scheduler {
 public:
  RftcController(FrequencyPlan plan, ControllerParams params);

  sched::EncryptionSchedule next(int rounds) override;
  std::string name() const override;

  const ControllerStats& stats() const { return stats_; }
  const FrequencyPlan& plan() const { return plan_; }
  /// The MMCM currently driving the cipher clock mux.
  int active_mmcm() const { return active_; }
  /// Periods of the M usable outputs of the active MMCM.
  std::vector<Picoseconds> active_periods() const;

  /// The recovery invariant: the MMCM driving the cipher mux is locked at
  /// the current simulation time.  Holds from construction onwards; a
  /// failed reconfiguration only ever parks the *reconfiguring* MMCM.
  bool active_locked() const;
  /// Mux-glitch fault sites produced by the most recent next() call
  /// (always empty unless the mux-glitch family is armed; the device
  /// forwards them into the round engine as forced faults).
  const std::vector<fault::FaultSite>& glitch_faults() const {
    return glitch_faults_;
  }
  /// Controller-side injector (null when no clocking fault family is
  /// armed); exposed so campaigns can report per-device fault tallies.
  const fault::FaultInjector* fault_injector() const { return fault_.get(); }

  /// How often each Block-RAM configuration index has been drawn so far
  /// (LFSR draws at construction and at every ping-pong reconfiguration).
  const std::vector<std::uint64_t>& config_draw_counts() const {
    return config_draw_counts_;
  }
  /// Shannon entropy (bits) of the empirical configuration-draw
  /// distribution; converges to log2(P) for a healthy LFSR.  Also exported
  /// as the "rftc.config_entropy_bits" gauge.
  double config_draw_entropy_bits() const;
  /// Distinct completion times observed so far — the realized fraction of
  /// the paper's P x C(R+M-1, R) (= 67,584 for RFTC(3, 1024)) completion
  /// classes.  Also exported as the "rftc.completion_classes" gauge.
  std::size_t completion_classes() const {
    return completion_classes_.size();
  }

 private:
  void start_reconfig(int mmcm_index);
  void maybe_swap();
  /// Readback verification: the latched configuration matches the intended
  /// Block-RAM entry.
  bool readback_matches(const clk::MmcmModel& mmcm, std::size_t idx) const;

  FrequencyPlan plan_;
  ControllerParams params_;
  clk::ConfigStore store_;
  std::vector<clk::MmcmModel> mmcms_;
  clk::DrpController drp_;
  Lfsr128 lfsr_;
  ControllerStats stats_;

  int active_ = 0;
  int reconfiguring_ = 1;
  /// Encryptions since the last ping-pong swap (feeds the global
  /// "rftc.encryptions_per_reconfig" interval histogram).
  std::uint64_t encryptions_since_swap_ = 0;
  Picoseconds reconfig_done_at_ = 0;
  Picoseconds now_ = 0;
  /// Clocking-family fault injector (null: every hook disarmed).
  std::unique_ptr<fault::FaultInjector> fault_;
  /// False when the pending reconfiguration exhausted its retries: the
  /// next swap window falls back to holding the active MMCM.
  bool reconfig_healthy_ = true;
  /// Start of the oldest unresolved failure (-1: no incident open); closes
  /// into recovery_latency_ps_ at the next healthy lock.
  Picoseconds recovery_started_at_ = -1;
  std::vector<fault::FaultSite> glitch_faults_;
  /// Draws per configuration index (config_draw_entropy_bits telemetry).
  std::vector<std::uint64_t> config_draw_counts_;
  /// Completion times seen so far (completion-class telemetry; bounded by
  /// the plan's P x C(R+M-1, R) classes).
  std::unordered_set<Picoseconds> completion_classes_;
};

}  // namespace rftc::core
