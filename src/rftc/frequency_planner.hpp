// FrequencyPlanner: the design-time half of RFTC (paper §4–§5).
//
// The planner chooses P frequency *sets* of M frequencies each, all within
// [f_min, f_max] on a `grid_step` grid, snapped to MMCM-realizable values
// (one shared VCO per set, fractional divide only on CLKOUT0).  A set is
// accepted only if none of its C(R+M−1, R) possible completion times
// collides with a completion time of any previously accepted set — the
// "exhaustively searching for duplicated completion times" step whose
// effect is Fig. 3-b (naive, overlapping) vs Fig. 3-c (overlap-free).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "clocking/mmcm_config.hpp"
#include "util/time_types.hpp"

namespace rftc::core {

struct PlannerParams {
  double fin_mhz = 24.0;
  double f_min_mhz = 12.0;
  double f_max_mhz = 48.0;
  /// Candidate grid pitch; the paper uses 0.012 MHz increments over
  /// 12–48 MHz ("3,072 clock frequencies ... with 0.012 MHz increments").
  double grid_step_mhz = 0.012;
  /// M — clock outputs used per MMCM (1, 2 or 3 in the paper; >3 failed
  /// routing on their part).
  int m_outputs = 3;
  /// P — number of stored frequency sets.
  int p_configs = 1024;
  /// R — crypto rounds per encryption (10 for AES-128 [11]).
  int rounds = 10;
  /// Completion times are quantized to this resolution (in femtoseconds)
  /// before the duplicate check.  MMCM periods are rational, not integer
  /// picoseconds, so the check runs on femtosecond-rounded periods: at the
  /// default of 1 fs it is effectively the paper's exact MATLAB duplicate
  /// search (picosecond rounding would manufacture a birthday problem —
  /// 67,584 times inside a 625,000-ps span).  Coarser values model an
  /// adversary's effective timing resolution (ablation bench).
  std::int64_t collision_resolution_fs = 1;
  /// When false, sets are accepted without the duplicate check (Fig. 3-b).
  bool avoid_overlaps = true;
  /// Partition the frequency grid into consecutive M-tuples instead of
  /// sampling — the "without carefully choosing" configuration of Fig. 3-b,
  /// where each set holds three nearly equal frequencies and completion
  /// times pile up into the annotated peaks.
  bool naive_grid_partition = false;
  /// Draw candidate frequencies uniformly in *period* rather than frequency.
  /// A uniform-frequency draw concentrates completion times at the short
  /// end (periods pile up near 1/f_max); uniform-period sampling yields the
  /// near-uniform completion-time histogram of Fig. 3-c.
  bool uniform_in_period = true;
  /// Candidate exploration order.
  std::uint64_t seed = 1;
  clk::MmcmLimits limits{};
};

/// Number of multisets of size `rounds` over `m` distinct frequencies:
/// C(rounds + m - 1, rounds).  For M=3, R=10 this is 66, giving the paper's
/// 1024 x 66 = 67,584 completion times.
std::uint64_t completion_times_per_set(int m, int rounds);

/// All achievable completion times for one set of round periods: every
/// Σ c_i * period_i with c_i >= 0 and Σ c_i = rounds.
std::vector<Picoseconds> enumerate_completion_times(
    const std::vector<Picoseconds>& periods_ps, int rounds);

/// The result of planning: P MMCM configurations plus bookkeeping.
struct FrequencyPlan {
  PlannerParams params;
  std::vector<clk::MmcmConfig> configs;
  /// Output periods rounded to ps (simulation granularity) and fs (the
  /// planner's duplicate-check granularity), index [config][output 0..M-1].
  std::vector<std::vector<Picoseconds>> periods_ps;
  std::vector<std::vector<std::int64_t>> periods_fs;
  /// Candidate sets rejected by the duplicate check.
  std::uint64_t rejected_sets = 0;

  std::size_t p() const { return configs.size(); }
  int m() const { return params.m_outputs; }
  /// Total nominal completion-time count P * C(R+M-1, R).
  std::uint64_t total_completion_times() const;
  /// Count of distinct frequencies across the whole plan.
  std::size_t distinct_frequencies() const;
};

/// Runs the planner.  Throws std::runtime_error if fewer than P acceptable
/// sets exist within the candidate budget.
FrequencyPlan plan_frequencies(const PlannerParams& params);

}  // namespace rftc::core
