#include "rftc/controller.hpp"

#include <stdexcept>

namespace rftc::core {

using sched::CycleSlot;
using sched::EncryptionSchedule;
using sched::SlotKind;

RftcController::RftcController(FrequencyPlan plan, ControllerParams params)
    : plan_(std::move(plan)),
      params_(params),
      store_(plan_.configs, plan_.params.limits),
      drp_(plan_.params.fin_mhz),
      lfsr_(params.lfsr_seed_lo, params.lfsr_seed_hi) {
  if (params_.n_mmcms < 2)
    throw std::invalid_argument(
        "RftcController: need at least 2 MMCMs for uninterrupted operation "
        "(one drives the cipher while the other reconfigures)");
  if (plan_.configs.empty())
    throw std::invalid_argument("RftcController: empty frequency plan");

  mmcms_.reserve(static_cast<std::size_t>(params_.n_mmcms));
  for (int i = 0; i < params_.n_mmcms; ++i) {
    const std::size_t idx = lfsr_.uniform(plan_.p());
    mmcms_.emplace_back(store_.config(idx), plan_.params.limits);
  }
  active_ = 0;
  reconfiguring_ = 1;
  start_reconfig(reconfiguring_);
}

void RftcController::start_reconfig(int mmcm_index) {
  // Fetch the precomputed write stream from Block RAM — the runtime path
  // of Fig. 1 — rather than re-encoding the configuration.
  const std::size_t idx = lfsr_.uniform(plan_.p());
  const std::vector<clk::DrpWrite> writes = store_.fetch(idx);
  const clk::ReconfigReport rep = drp_.apply(
      mmcms_[static_cast<std::size_t>(mmcm_index)], writes, now_);
  reconfig_done_at_ = rep.locked;
  ++stats_.reconfigurations;
  stats_.total_drp_transactions += rep.drp_transactions;
  stats_.last_reconfig_duration_ps = rep.locked - rep.started;
}

void RftcController::maybe_swap() {
  if (now_ < reconfig_done_at_) return;
  // The freshly reconfigured MMCM takes over; the previously active one is
  // immediately sent off to fetch its next configuration (Fig. 2-B,
  // "Encryption x+1").
  const int previous_active = active_;
  active_ = reconfiguring_;
  reconfiguring_ = previous_active;
  start_reconfig(reconfiguring_);
}

std::vector<Picoseconds> RftcController::active_periods() const {
  std::vector<Picoseconds> out;
  out.reserve(static_cast<std::size_t>(plan_.m()));
  for (int k = 0; k < plan_.m(); ++k)
    out.push_back(mmcms_[static_cast<std::size_t>(active_)].output_period_ps(k));
  return out;
}

EncryptionSchedule RftcController::next(int rounds) {
  maybe_swap();

  EncryptionSchedule es;
  es.load_edge = sched::kLoadEdgePs;
  es.global_start = now_;
  const std::vector<Picoseconds> periods = active_periods();
  const auto m = static_cast<std::uint64_t>(plan_.m());

  Picoseconds t = es.load_edge;
  int prev_sel = -1;
  for (int r = 0; r < rounds; ++r) {
    const auto sel = static_cast<int>(lfsr_.uniform(m));
    const Picoseconds p = periods[static_cast<std::size_t>(sel)];
    if (params_.model_switch_overhead && prev_sel >= 0 && sel != prev_sel) {
      const Picoseconds from = periods[static_cast<std::size_t>(prev_sel)];
      t += clk::switch_latency(from, p, t % from, t % p);
    }
    t += p;
    es.slots.push_back({t, p, SlotKind::kRound, 0.0});
    prev_sel = sel;
  }
  now_ += (t - es.load_edge) + sched::kInterEncryptionGapPs;
  ++stats_.encryptions;
  return es;
}

std::string RftcController::name() const {
  return "RFTC(" + std::to_string(plan_.m()) + ", " +
         std::to_string(plan_.p()) + ")";
}

}  // namespace rftc::core
