#include "rftc/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"

namespace rftc::core {

using sched::CycleSlot;
using sched::EncryptionSchedule;
using sched::SlotKind;

namespace {

/// Process-wide aggregates across every controller instance, resolved once
/// (registry lookups take a lock; the references are stable).
struct GlobalMetrics {
  obs::Counter& encryptions =
      obs::Registry::global().counter("rftc.encryptions");
  obs::Counter& reconfigurations =
      obs::Registry::global().counter("rftc.reconfigurations");
  obs::Counter& drp_transactions =
      obs::Registry::global().counter("rftc.drp_transactions");
  obs::Counter& round_clock_switches =
      obs::Registry::global().counter("rftc.round_clock_switches");
  obs::Histogram& reconfig_duration_ps =
      obs::Registry::global().histogram("rftc.reconfig_duration_ps");
  obs::Histogram& completion_ps =
      obs::Registry::global().histogram("rftc.completion_ps");
  obs::Histogram& encryptions_per_reconfig =
      obs::Registry::global().histogram("rftc.encryptions_per_reconfig");
  obs::Histogram& reconfig_slack_ps =
      obs::Registry::global().histogram("rftc.reconfig_slack_ps");
  obs::Gauge& config_entropy_bits =
      obs::Registry::global().gauge("rftc.config_entropy_bits");
  obs::Gauge& completion_classes =
      obs::Registry::global().gauge("rftc.completion_classes");
  obs::Counter& lock_failures =
      obs::Registry::global().counter("rftc.recovery.lock_failures");
  obs::Counter& recovery_retries =
      obs::Registry::global().counter("rftc.recovery.retries");
  obs::Counter& fallbacks =
      obs::Registry::global().counter("rftc.recovery.fallbacks");
  obs::Histogram& recovery_latency_ps =
      obs::Registry::global().histogram("rftc.recovery.latency_ps");

  static GlobalMetrics& get() {
    static GlobalMetrics m;
    return m;
  }
};

}  // namespace

Picoseconds recovery_watchdog_deadline_ps(const RecoveryPolicy& policy,
                                          Picoseconds expected_lock_ps) {
  const auto scaled = static_cast<Picoseconds>(
      policy.watchdog_factor * static_cast<double>(expected_lock_ps));
  return std::max(policy.watchdog_floor_ps, scaled);
}

RftcController::RftcController(FrequencyPlan plan, ControllerParams params)
    : plan_(std::move(plan)),
      params_(params),
      store_(plan_.configs, plan_.params.limits),
      drp_(plan_.params.fin_mhz),
      lfsr_(params.lfsr_seed_lo, params.lfsr_seed_hi) {
  if (params_.n_mmcms < 2)
    throw std::invalid_argument(
        "RftcController: need at least 2 MMCMs for uninterrupted operation "
        "(one drives the cipher while the other reconfigures)");
  if (plan_.configs.empty())
    throw std::invalid_argument("RftcController: empty frequency plan");

  config_draw_counts_.assign(plan_.p(), 0);
  mmcms_.reserve(static_cast<std::size_t>(params_.n_mmcms));
  for (int i = 0; i < params_.n_mmcms; ++i) {
    const std::size_t idx = lfsr_.uniform(plan_.p());
    ++config_draw_counts_[idx];
    mmcms_.emplace_back(store_.config(idx), plan_.params.limits);
  }
  if (params_.faults.clocking_any()) {
    fault_ = std::make_unique<fault::FaultInjector>(params_.faults);
    drp_.set_fault_injector(fault_.get());
  }
  active_ = 0;
  reconfiguring_ = 1;
  start_reconfig(reconfiguring_);
}

bool RftcController::active_locked() const {
  return mmcms_[static_cast<std::size_t>(active_)].locked(now_);
}

bool RftcController::readback_matches(const clk::MmcmModel& mmcm,
                                      std::size_t idx) const {
  // A corrupted image can still decode to a valid configuration — just not
  // the intended one.  Compare the latched attributes against the Block-RAM
  // entry (the hardware analogue: DRP read-back after LOCKED).
  const clk::MmcmConfig& want = store_.config(idx);
  const clk::MmcmConfig got = mmcm.active_config();
  return got.mult_8ths == want.mult_8ths && got.divclk == want.divclk &&
         got.out_div_8ths == want.out_div_8ths;
}

void RftcController::start_reconfig(int mmcm_index) {
  RFTC_OBS_SPAN(span, "rftc", "rftc.reconfig");
  // Fetch the precomputed write stream from Block RAM — the runtime path
  // of Fig. 1 — rather than re-encoding the configuration.
  const std::size_t idx = lfsr_.uniform(plan_.p());
  ++config_draw_counts_[idx];
  const std::vector<clk::DrpWrite> writes = store_.fetch(idx);
  clk::MmcmModel& mmcm = mmcms_[static_cast<std::size_t>(mmcm_index)];
  GlobalMetrics& g = GlobalMetrics::get();

  // Watchdog budget of one attempt, derived from the *intended*
  // configuration (a corrupted register image may not even decode).
  const Picoseconds expected_lock =
      static_cast<Picoseconds>(clk::lock_cycles(store_.config(idx))) *
      period_ps_from_mhz(plan_.params.fin_mhz);
  const Picoseconds deadline =
      recovery_watchdog_deadline_ps(params_.recovery, expected_lock);

  Picoseconds attempt_start = now_;
  reconfig_healthy_ = true;
  int attempt = 0;
  for (;;) {
    const clk::ReconfigReport rep = drp_.apply(mmcm, writes, attempt_start);
    stats_.reconfigurations_.inc();
    stats_.drp_transactions_.inc(rep.drp_transactions);
    g.reconfigurations.inc();
    g.drp_transactions.inc(rep.drp_transactions);

    bool healthy = !rep.lock_failed;
    if (healthy && fault_ != nullptr && params_.recovery.verify_readback &&
        !readback_matches(mmcm, idx))
      healthy = false;

    if (healthy) {
      reconfig_done_at_ = rep.locked;
      const Picoseconds duration = rep.locked - rep.started;
      stats_.last_reconfig_ps_.set(static_cast<double>(duration));
      stats_.reconfig_duration_ps_.observe(static_cast<double>(duration));
      g.reconfig_duration_ps.observe(static_cast<double>(duration));
      if (recovery_started_at_ >= 0) {
        // The incident that began at the first failed attempt is over.
        const Picoseconds latency = rep.locked - recovery_started_at_;
        stats_.recovery_latency_ps_.observe(static_cast<double>(latency));
        g.recovery_latency_ps.observe(static_cast<double>(latency));
        recovery_started_at_ = -1;
        obs::log::debug(
            "fault", "reconfig recovered",
            {obs::log::kv("mmcm", static_cast<double>(mmcm_index)),
             obs::log::kv("latency_us", to_us(latency))});
      }
      span.arg("duration_us", to_us(duration));
      break;
    }

    // Watchdog: a lock that never rises is detected `deadline` after reset
    // release; a lock that rose on a wrong configuration is caught by the
    // readback right after it rose.
    const Picoseconds detected =
        rep.lock_failed ? rep.writes_done + deadline : rep.locked;
    stats_.lock_failures_.inc();
    g.lock_failures.inc();
    obs::log::debug("fault",
                    rep.lock_failed ? "reconfig lock failed"
                                    : "reconfig readback mismatch",
                    {obs::log::kv("mmcm", static_cast<double>(mmcm_index)),
                     obs::log::kv("attempt", static_cast<double>(attempt))});
    if (recovery_started_at_ < 0) recovery_started_at_ = attempt_start;
    ++attempt;
    if (attempt > params_.recovery.max_retries) {
      // Bounded retries exhausted: park this MMCM; the next swap window
      // falls back to holding the last-locked one (maybe_swap).
      reconfig_healthy_ = false;
      reconfig_done_at_ = detected;
      span.arg("gave_up_after", attempt);
      obs::notify_fault_recovery_exhausted("mmcm reconfig retries");
      break;
    }
    stats_.recovery_retries_.inc();
    g.recovery_retries.inc();
    // Bounded exponential backoff before rewriting the registers.
    const int shift = std::min(attempt - 1, 16);
    attempt_start = detected + (params_.recovery.backoff_base_ps << shift);
  }

  g.config_entropy_bits.set(config_draw_entropy_bits());
  span.arg("mmcm", mmcm_index);
  span.arg("config_idx", static_cast<double>(idx));
}

void RftcController::maybe_swap() {
  if (now_ < reconfig_done_at_) return;
  if (!reconfig_healthy_) {
    // Fallback: the parked MMCM never reached a trustworthy lock, so the
    // last-locked MMCM keeps driving the mux (the cipher must never run
    // from an unlocked clock) and a fresh configuration draw restarts the
    // retry cycle — the ping-pong resumes at the next healthy lock.
    stats_.fallbacks_.inc();
    GlobalMetrics::get().fallbacks.inc();
    obs::log::debug(
        "fault", "holding last-locked MMCM (fallback)",
        {obs::log::kv("mmcm", static_cast<double>(reconfiguring_))});
    start_reconfig(reconfiguring_);
    return;
  }
  // The freshly reconfigured MMCM takes over; the previously active one is
  // immediately sent off to fetch its next configuration (Fig. 2-B,
  // "Encryption x+1").  The slack — how long the reconfigured MMCM sat
  // locked but idle — is the ping-pong's safety margin against a stall.
  const Picoseconds slack = now_ - reconfig_done_at_;
  stats_.reconfig_slack_ps_.observe(static_cast<double>(slack));
  GlobalMetrics::get().reconfig_slack_ps.observe(static_cast<double>(slack));
  GlobalMetrics::get().encryptions_per_reconfig.observe(
      static_cast<double>(encryptions_since_swap_));
  encryptions_since_swap_ = 0;
  const int previous_active = active_;
  active_ = reconfiguring_;
  reconfiguring_ = previous_active;
  start_reconfig(reconfiguring_);
}

std::vector<Picoseconds> RftcController::active_periods() const {
  std::vector<Picoseconds> out;
  out.reserve(static_cast<std::size_t>(plan_.m()));
  for (int k = 0; k < plan_.m(); ++k)
    out.push_back(mmcms_[static_cast<std::size_t>(active_)].output_period_ps(k));
  return out;
}

EncryptionSchedule RftcController::next(int rounds) {
  RFTC_OBS_SPAN(span, "rftc", "rftc.encryption");
  const bool tracing = span.active();
  maybe_swap();

  // Recovery invariant: whatever happened to the reconfiguring MMCM, the
  // one driving the cipher mux holds a healthy lock.
  assert(active_locked() &&
         "recovery invariant: encryption never runs from an unlocked clock");
  if (fault_ != nullptr) glitch_faults_.clear();

  EncryptionSchedule es;
  es.load_edge = sched::kLoadEdgePs;
  es.global_start = now_;
  const std::vector<Picoseconds> periods = active_periods();
  const auto m = static_cast<std::uint64_t>(plan_.m());

  Picoseconds t = es.load_edge;
  int prev_sel = -1;
  std::uint64_t switches = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto sel = static_cast<int>(lfsr_.uniform(m));
    const Picoseconds p = periods[static_cast<std::size_t>(sel)];
    if (prev_sel >= 0 && sel != prev_sel) {
      ++switches;
      if (tracing)
        RFTC_OBS_INSTANT("rftc", "rftc.clock_switch",
                         {"round", static_cast<double>(r)},
                         {"sel", static_cast<double>(sel)});
      if (params_.model_switch_overhead) {
        const Picoseconds from = periods[static_cast<std::size_t>(prev_sel)];
        t += clk::switch_latency(from, p, t % from, t % p);
      }
      if (fault_ != nullptr && fault_->mux_glitch()) {
        // A runt pulse during the BUFGMUX dead time evaluates the round
        // logic from a glitched state: a transient flip on the input of the
        // round this slot clocks (slot r drives engine round r + 1).
        glitch_faults_.push_back({r + 1, fault_->draw_flip_bit()});
      }
    }
    t += p;
    es.slots.push_back({t, p, SlotKind::kRound, 0.0});
    prev_sel = sel;
  }
  now_ += (t - es.load_edge) + sched::kInterEncryptionGapPs;
  stats_.encryptions_.inc();
  ++encryptions_since_swap_;

  GlobalMetrics& g = GlobalMetrics::get();
  g.encryptions.inc();
  if (switches > 0) g.round_clock_switches.inc(switches);
  g.completion_ps.observe(static_cast<double>(t - es.load_edge));
  completion_classes_.insert(t - es.load_edge);
  g.completion_classes.set(static_cast<double>(completion_classes_.size()));

  span.arg("completion_ns", to_ns(t - es.load_edge));
  span.arg("mmcm", active_);
  return es;
}

double RftcController::config_draw_entropy_bits() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : config_draw_counts_) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const std::uint64_t c : config_draw_counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::string RftcController::name() const {
  return "RFTC(" + std::to_string(plan_.m()) + ", " +
         std::to_string(plan_.p()) + ")";
}

}  // namespace rftc::core
