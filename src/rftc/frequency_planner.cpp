#include "rftc/frequency_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rftc::core {

std::uint64_t completion_times_per_set(int m, int rounds) {
  // C(rounds + m - 1, rounds) computed without overflow for the small
  // arguments we use (m <= 7, rounds <= 32).
  std::uint64_t num = 1;
  for (int i = 1; i <= m - 1; ++i) {
    num = num * static_cast<std::uint64_t>(rounds + i) /
          static_cast<std::uint64_t>(i);
  }
  return num;
}

namespace {

void enumerate_rec(const std::vector<Picoseconds>& periods, int index,
                   int remaining, Picoseconds acc,
                   std::vector<Picoseconds>& out) {
  if (index == static_cast<int>(periods.size()) - 1) {
    out.push_back(acc + static_cast<Picoseconds>(remaining) *
                            periods[static_cast<std::size_t>(index)]);
    return;
  }
  for (int c = 0; c <= remaining; ++c) {
    enumerate_rec(periods, index + 1, remaining - c,
                  acc + static_cast<Picoseconds>(c) *
                            periods[static_cast<std::size_t>(index)],
                  out);
  }
}

}  // namespace

std::vector<Picoseconds> enumerate_completion_times(
    const std::vector<Picoseconds>& periods_ps, int rounds) {
  if (periods_ps.empty())
    throw std::invalid_argument("enumerate_completion_times: no periods");
  std::vector<Picoseconds> out;
  out.reserve(completion_times_per_set(static_cast<int>(periods_ps.size()),
                                       rounds));
  enumerate_rec(periods_ps, 0, rounds, 0, out);
  return out;
}

std::uint64_t FrequencyPlan::total_completion_times() const {
  return static_cast<std::uint64_t>(configs.size()) *
         completion_times_per_set(params.m_outputs, params.rounds);
}

std::size_t FrequencyPlan::distinct_frequencies() const {
  std::unordered_set<Picoseconds> seen;
  for (const auto& ps : periods_ps) seen.insert(ps.begin(), ps.end());
  return seen.size();
}

FrequencyPlan plan_frequencies(const PlannerParams& params) {
  if (params.m_outputs < 1 || params.m_outputs > clk::kMmcmOutputs)
    throw std::invalid_argument("plan_frequencies: bad M");
  if (params.p_configs < 1)
    throw std::invalid_argument("plan_frequencies: bad P");
  if (params.f_max_mhz <= params.f_min_mhz || params.grid_step_mhz <= 0)
    throw std::invalid_argument("plan_frequencies: bad frequency range");

  // Candidate frequency grid (the paper's 0.012 MHz pitch over 12–48 MHz).
  std::vector<double> grid;
  for (double f = params.f_min_mhz; f <= params.f_max_mhz + 1e-9;
       f += params.grid_step_mhz)
    grid.push_back(f);

  Xoshiro256StarStar rng(params.seed);
  const std::int64_t res = std::max<std::int64_t>(params.collision_resolution_fs, 1);

  FrequencyPlan plan;
  plan.params = params;
  std::unordered_set<Picoseconds> used_times;
  // A set whose *frequency tuple* was already accepted adds nothing; track
  // period tuples to avoid storing duplicates in the naive mode too.
  std::unordered_set<std::uint64_t> used_tuples;

  const std::uint64_t budget =
      static_cast<std::uint64_t>(params.p_configs) * 400 + 10'000;
  std::uint64_t attempts = 0;
  std::size_t grid_cursor = 0;

  while (plan.configs.size() < static_cast<std::size_t>(params.p_configs)) {
    if (++attempts > budget)
      throw std::runtime_error(
          "plan_frequencies: candidate budget exhausted before reaching P; "
          "widen the range or lower P");

    // Draw M grid targets and snap the whole set onto one VCO.
    std::array<double, clk::kMmcmOutputs> targets{};
    for (int k = 0; k < params.m_outputs; ++k) {
      double f;
      if (params.naive_grid_partition) {
        f = grid[(grid_cursor + static_cast<std::size_t>(k)) % grid.size()];
      } else if (params.uniform_in_period) {
        const double p_min = 1.0 / params.f_max_mhz;
        const double p_max = 1.0 / params.f_min_mhz;
        const double p = p_min + (p_max - p_min) * rng.uniform01();
        // Snap the drawn period's frequency onto the design grid.
        const double raw = 1.0 / p;
        const auto idx = static_cast<std::size_t>(std::clamp(
            std::llround((raw - params.f_min_mhz) / params.grid_step_mhz),
            0LL, static_cast<long long>(grid.size() - 1)));
        f = grid[idx];
      } else {
        f = grid[rng.uniform(grid.size())];
      }
      targets[static_cast<std::size_t>(k)] = f;
    }
    if (params.naive_grid_partition)
      grid_cursor = (grid_cursor + static_cast<std::size_t>(params.m_outputs)) %
                    grid.size();
    auto cfg = clk::synthesize_frequency_set(params.fin_mhz, targets,
                                             params.m_outputs, params.limits);
    if (!cfg) continue;

    std::vector<Picoseconds> periods(static_cast<std::size_t>(params.m_outputs));
    std::vector<std::int64_t> periods_fs(static_cast<std::size_t>(params.m_outputs));
    bool in_range = true;
    // Integer-divider outputs snap at VCO/O granularity (~0.3 MHz near the
    // top of the band), so the band check must tolerate at least that much.
    const double tolerance = std::max(params.grid_step_mhz, 0.3);
    for (int k = 0; k < params.m_outputs; ++k) {
      const double f = cfg->output_mhz(k);
      if (f < params.f_min_mhz - tolerance ||
          f > params.f_max_mhz + tolerance) {
        in_range = false;
        break;
      }
      periods[static_cast<std::size_t>(k)] = cfg->output_period_ps(k);
      periods_fs[static_cast<std::size_t>(k)] =
          static_cast<std::int64_t>(std::llround(1e9 / f));
    }
    if (!in_range) continue;

    // All M outputs of a set must have unique frequencies (§4).  The naive
    // mode skips this — near-equal targets snapping to one integer divider
    // is exactly the kind of accident careful planning prevents.
    std::vector<std::int64_t> sorted = periods_fs;
    std::sort(sorted.begin(), sorted.end());
    if (params.avoid_overlaps &&
        std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      continue;

    // Skip exact repeats of an already-accepted tuple (except in the naive
    // grid partition, which stores whatever the grid walk produced — the
    // whole point of Fig. 3-b).
    std::uint64_t tuple_hash = 1469598103934665603ULL;
    for (const std::int64_t p : sorted) {
      tuple_hash ^= static_cast<std::uint64_t>(p);
      tuple_hash *= 1099511628211ULL;
    }
    if (!params.naive_grid_partition && used_tuples.contains(tuple_hash))
      continue;

    if (params.avoid_overlaps) {
      const auto times = enumerate_completion_times(periods_fs, params.rounds);
      std::unordered_set<std::int64_t> candidate;
      candidate.reserve(times.size());
      bool clash = false;
      for (const std::int64_t t : times) {
        const std::int64_t q = t / res;
        // Reject on collision with any accepted set, and on *internal*
        // collisions (two round multisets of this very set with identical
        // sums — the 396.1 ns example of §5 is exactly such a case).
        if (used_times.contains(q) || !candidate.insert(q).second) {
          clash = true;
          break;
        }
      }
      if (clash) {
        ++plan.rejected_sets;
        continue;
      }
      used_times.insert(candidate.begin(), candidate.end());
    }

    used_tuples.insert(tuple_hash);
    plan.configs.push_back(*cfg);
    plan.periods_ps.push_back(std::move(periods));
    plan.periods_fs.push_back(std::move(periods_fs));
  }
  return plan;
}

}  // namespace rftc::core
