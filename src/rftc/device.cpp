#include "rftc/device.hpp"

namespace rftc::core {

RftcDevice::RftcDevice(const aes::Key& key, FrequencyPlan plan,
                       ControllerParams params)
    : engine_(key),
      controller_(
          std::make_unique<RftcController>(std::move(plan), params)) {
  if (params.faults.timing_enabled()) {
    // Salt 1 keeps the engine's timing stream independent of the
    // controller's clocking stream (salt 0), so arming one family never
    // perturbs the other's fault sites.
    engine_fault_ = std::make_unique<fault::FaultInjector>(params.faults, 1);
    engine_.set_fault_injector(engine_fault_.get());
  }
}

RftcDevice RftcDevice::make(const aes::Key& key, int m, int p,
                            std::uint64_t seed) {
  PlannerParams pp;
  pp.m_outputs = m;
  pp.p_configs = p;
  pp.seed = seed;
  ControllerParams cp;
  cp.lfsr_seed_lo = seed * 0x9E3779B97F4A7C15ULL + 1;
  cp.lfsr_seed_hi = seed ^ 0xDEADBEEFCAFEBABEULL;
  return RftcDevice(key, plan_frequencies(pp), cp);
}

EncryptionRecord RftcDevice::encrypt(const aes::Block& plaintext) {
  sched::EncryptionSchedule schedule = controller_->next(aes::kRounds);
  const bool faulted =
      engine_fault_ != nullptr || !controller_->glitch_faults().empty();
  if (faulted) {
    round_periods_.clear();
    for (const sched::CycleSlot& slot : schedule.slots)
      if (slot.kind == sched::SlotKind::kRound)
        round_periods_.push_back(slot.period);
  }
  EncryptionRecord rec{aes::Block{}, std::move(schedule),
                       faulted ? engine_.encrypt(plaintext, round_periods_,
                                                 controller_->glitch_faults())
                               : engine_.encrypt(plaintext)};
  rec.fault_flips = rec.activity.injected_flips();
  rec.ciphertext = rec.activity.ciphertext();
  sched::observe_schedule(rec.schedule);
  return rec;
}

ScheduledAesDevice::ScheduledAesDevice(
    const aes::Key& key, std::unique_ptr<sched::Scheduler> scheduler)
    : engine_(key), scheduler_(std::move(scheduler)) {}

EncryptionRecord ScheduledAesDevice::encrypt(const aes::Block& plaintext) {
  EncryptionRecord rec{aes::Block{}, scheduler_->next(aes::kRounds),
                       engine_.encrypt(plaintext)};
  rec.ciphertext = rec.activity.ciphertext();
  sched::observe_schedule(rec.schedule);
  return rec;
}

}  // namespace rftc::core
