#include "sched/fixed_clock.hpp"

#include <stdexcept>

namespace rftc::sched {

FixedClockScheduler::FixedClockScheduler(double clock_mhz)
    : clock_mhz_(clock_mhz), period_(period_ps_from_mhz(clock_mhz)) {
  if (clock_mhz <= 0)
    throw std::invalid_argument("FixedClockScheduler: bad frequency");
}

EncryptionSchedule FixedClockScheduler::next(int rounds) {
  EncryptionSchedule es;
  es.load_edge = kLoadEdgePs;
  es.global_start = now_;
  Picoseconds t = es.load_edge;
  es.slots.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    t += period_;
    es.slots.push_back({t, period_, SlotKind::kRound, 0.0});
  }
  now_ += (t - es.load_edge) + kInterEncryptionGapPs;
  return es;
}

std::string FixedClockScheduler::name() const {
  return "Unprotected(" + std::to_string(clock_mhz_) + " MHz)";
}

}  // namespace rftc::sched
