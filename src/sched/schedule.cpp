#include "sched/schedule.hpp"

#include "util/time_types.hpp"

namespace rftc::sched {

Picoseconds EncryptionSchedule::completion_ps() const {
  Picoseconds last = load_edge;
  for (const CycleSlot& s : slots)
    if (s.kind == SlotKind::kRound) last = s.edge_time;
  return last - load_edge;
}

int EncryptionSchedule::round_count() const {
  int n = 0;
  for (const CycleSlot& s : slots)
    if (s.kind == SlotKind::kRound) ++n;
  return n;
}

Picoseconds Scheduler::unprotected_completion_ps(int rounds) const {
  return static_cast<Picoseconds>(rounds) * period_ps_from_mhz(48.0);
}

}  // namespace rftc::sched
