#include "sched/schedule.hpp"

#include "obs/metrics.hpp"
#include "util/time_types.hpp"

namespace rftc::sched {

Picoseconds EncryptionSchedule::completion_ps() const {
  Picoseconds last = load_edge;
  for (const CycleSlot& s : slots)
    if (s.kind == SlotKind::kRound) last = s.edge_time;
  return last - load_edge;
}

int EncryptionSchedule::round_count() const {
  int n = 0;
  for (const CycleSlot& s : slots)
    if (s.kind == SlotKind::kRound) ++n;
  return n;
}

Picoseconds Scheduler::unprotected_completion_ps(int rounds) const {
  return static_cast<Picoseconds>(rounds) * period_ps_from_mhz(48.0);
}

void observe_schedule(const EncryptionSchedule& schedule) {
  static obs::Histogram& completion =
      obs::Registry::global().histogram("sched.completion_ps");
  static obs::Histogram& round_freq =
      obs::Registry::global().histogram("sched.round_freq_mhz");
  completion.observe(static_cast<double>(schedule.completion_ps()));
  for (const CycleSlot& s : schedule.slots) {
    if (s.kind != SlotKind::kRound || s.period <= 0) continue;
    round_freq.observe(1e6 / static_cast<double>(s.period));
  }
}

}  // namespace rftc::sched
