// Round-timing schedules: the common currency between countermeasures
// (which decide *when* each cipher round is clocked) and the power-trace
// simulator (which decides what each clock edge does to the power rail).
//
// A schedule is expressed in time relative to the start of the capture
// window, exactly as an oscilloscope triggered on the encryption-start
// signal would see it: the plaintext-load edge is on the fixed interface
// clock (aligned across traces), while the crypto-clock edges move around
// under randomization countermeasures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/time_types.hpp"

namespace rftc::sched {

enum class SlotKind : std::uint8_t {
  kRound,  // a real AES round; consumes the next activity cycle
  kDummy,  // RCDD-style dummy operation; scheduler supplies the activity
  kDelay,  // RDI-style buffer-chain delay slice; small constant activity
};

struct CycleSlot {
  /// Rising-edge time relative to the capture window start.
  Picoseconds edge_time = 0;
  /// Period of the clock that produced this edge.
  Picoseconds period = 0;
  SlotKind kind = SlotKind::kRound;
  /// For kDummy/kDelay: switching activity in state-register HD units.
  double extra_activity = 0.0;
};

struct EncryptionSchedule {
  /// Plaintext-load edge (interface clock; constant across encryptions).
  Picoseconds load_edge = 0;
  /// Crypto-clock slots in time order; exactly `rounds` of them have
  /// kind == kRound.
  std::vector<CycleSlot> slots;
  /// Global (wall-clock) time at which this encryption started; lets the
  /// RFTC controller overlap MMCM reconfiguration with encryptions.
  Picoseconds global_start = 0;

  /// Completion time: last round edge minus the load edge — the quantity
  /// whose histogram the paper plots in Fig. 3.
  Picoseconds completion_ps() const;
  /// Number of kRound slots.
  int round_count() const;
};

/// A countermeasure's clocking policy.  Each call to `next()` produces the
/// schedule for one encryption and advances the scheduler's internal wall
/// clock (so reconfiguration pipelines, as in Fig. 2-B, are expressible).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Schedule one encryption of `rounds` cipher rounds.
  virtual EncryptionSchedule next(int rounds) = 0;

  /// Human-readable countermeasure name for reports.
  virtual std::string name() const = 0;

  /// Nominal unprotected completion for the same round count, used to
  /// compute the time-overhead column of Table 1.  Default: 48 MHz rounds.
  virtual Picoseconds unprotected_completion_ps(int rounds) const;
};

/// Telemetry tap: records one realized schedule into the global obs
/// registry — the "sched.completion_ps" histogram (the Fig. 3 quantity)
/// and "sched.round_freq_mhz", the per-round realized clock-frequency
/// distribution.  Scheduler-agnostic: devices call this on every
/// encryption, so the realized histograms of RFTC and every baseline
/// countermeasure are comparable in one export.
void observe_schedule(const EncryptionSchedule& schedule);

/// Offset of the plaintext-load edge inside the capture window.  One
/// interface-clock period (24 MHz) of front porch.
inline constexpr Picoseconds kLoadEdgePs = 41'667;
/// Gap charged between encryptions for ciphertext/plaintext I/O on the
/// interface clock (affects only the wall clock, not the capture window).
inline constexpr Picoseconds kInterEncryptionGapPs = 4 * 41'667;

}  // namespace rftc::sched
