// Unprotected reference: a single constant crypto clock (Fig. 3-a).
#pragma once

#include "sched/schedule.hpp"

namespace rftc::sched {

class FixedClockScheduler final : public Scheduler {
 public:
  explicit FixedClockScheduler(double clock_mhz = 48.0);

  EncryptionSchedule next(int rounds) override;
  std::string name() const override;

  double clock_mhz() const { return clock_mhz_; }

 private:
  double clock_mhz_;
  Picoseconds period_;
  Picoseconds now_ = 0;
};

}  // namespace rftc::sched
