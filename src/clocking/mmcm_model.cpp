#include "clocking/mmcm_model.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace rftc::clk {

MmcmModel::MmcmModel(MmcmConfig initial, MmcmLimits limits)
    : limits_(limits), active_(initial) {
  if (auto why = initial.validate(limits_))
    throw std::invalid_argument("MmcmModel: illegal initial config: " + *why);
  // Mirror the initial configuration into the register file so a partial
  // DRP rewrite composes with the bitstream values, as in hardware.
  for (const DrpWrite& w : encode_config(initial, limits_))
    regs_[w.addr] = static_cast<std::uint16_t>(
        (regs_[w.addr] & ~w.mask) | (w.data & w.mask));
}

std::uint16_t MmcmModel::drp_read(std::uint8_t addr) const {
  return regs_.at(addr);
}

void MmcmModel::drp_write(std::uint8_t addr, std::uint16_t data,
                          std::uint16_t mask) {
  if (!in_reset_)
    throw std::logic_error(
        "MmcmModel: DRP write while not in reset (XAPP888 requires RST high "
        "during reconfiguration)");
  regs_.at(addr) = static_cast<std::uint16_t>(
      (regs_.at(addr) & ~mask) | (data & mask));
}

void MmcmModel::assert_reset(Picoseconds) { in_reset_ = true; }

void MmcmModel::release_reset(Picoseconds now) {
  if (!in_reset_) return;
  in_reset_ = false;
  active_ = staged_config();
  const Picoseconds lock_wait =
      static_cast<Picoseconds>(lock_cycles(active_)) *
      period_ps_from_mhz(active_.fin_mhz);
  locked_at_ = now + lock_wait;

  // Lock timing is the dominant term of the 34 us reconfiguration figure
  // (paper §5); track its distribution across every relock in the process.
  static obs::Counter& relocks =
      obs::Registry::global().counter("clk.mmcm.relocks");
  static obs::Histogram& lock_ps =
      obs::Registry::global().histogram("clk.mmcm.lock_time_ps");
  relocks.inc();
  lock_ps.observe(static_cast<double>(lock_wait));
  RFTC_OBS_INSTANT("clk", "mmcm.locked", {"lock_us", to_us(lock_wait)},
                   {"vco_mhz", active_.fin_mhz * active_.mult_8ths / 8.0 /
                                   active_.divclk});
}

void MmcmModel::drop_lock() {
  locked_at_ = kNeverLocksPs;
  static obs::Counter& losses =
      obs::Registry::global().counter("clk.mmcm.lock_losses");
  losses.inc();
  RFTC_OBS_INSTANT("clk", "mmcm.lock_lost");
}

MmcmConfig MmcmModel::staged_config() const {
  MmcmConfig cfg = decode_config(regs_, active_.fin_mhz);
  cfg.out_enabled = active_.out_enabled;
  return cfg;
}

std::optional<std::string> MmcmModel::staged_error() const {
  try {
    return staged_config().validate(limits_);
  } catch (const std::exception& e) {
    return std::string("undecodable register image: ") + e.what();
  }
}

Picoseconds MmcmModel::output_period_ps(int k) const {
  if (k < 0 || k >= kMmcmOutputs)
    throw std::out_of_range("MmcmModel::output_period_ps");
  return active_.output_period_ps(k);
}

Picoseconds MmcmModel::lock_time_ps() const {
  // lock_cycles() is expressed in CLKIN cycles (lock_cnt PFD cycles, each
  // DIVCLK_DIVIDE input cycles long).
  const MmcmConfig cfg = staged_config();
  return static_cast<Picoseconds>(lock_cycles(cfg)) *
         period_ps_from_mhz(cfg.fin_mhz);
}

}  // namespace rftc::clk
