#include "clocking/mmcm_config.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace rftc::clk {

MmcmLimits altera_iopll_limits() {
  MmcmLimits lim;
  lim.vco_min_mhz = 600.0;
  lim.vco_max_mhz = 1600.0;
  lim.pfd_min_mhz = 5.0;
  lim.pfd_max_mhz = 325.0;
  lim.mult_min_8ths = 1 * 8;
  // The IOPLL's M counter reaches far higher, but a 24 MHz input already
  // saturates the 1600 MHz VCO at M=66; capping at the DRP codec's counter
  // range keeps the reconfiguration-stream model shared across vendors.
  lim.mult_max_8ths = 64 * 8;
  lim.divclk_max = 110;
  // The IOPLL's C counters reach 512, but the reconfiguration stream model
  // shares the 7-series DRP codec, whose counters top out at 128; the
  // 12-48 MHz band never needs more.
  lim.out_div_max_8ths = 128 * 8;
  lim.fractional_clkout0 = false;
  return lim;
}

namespace {

bool is_whole(int eighths) { return eighths % 8 == 0; }

/// Closest legal divider (in eighths) for `vco / target`, honouring the
/// fractional capability of the output.
int best_divider_8ths(double vco_mhz, double target_mhz, bool fractional,
                      const MmcmLimits& lim) {
  const double ideal = vco_mhz / target_mhz;
  int div8;
  if (fractional) {
    div8 = static_cast<int>(std::llround(ideal * 8.0));
  } else {
    div8 = static_cast<int>(std::llround(ideal)) * 8;
  }
  if (div8 < lim.out_div_min_8ths) div8 = lim.out_div_min_8ths;
  if (div8 > lim.out_div_max_8ths) div8 = lim.out_div_max_8ths;
  if (!fractional) div8 = (div8 / 8) * 8;
  if (div8 < 8) div8 = 8;
  return div8;
}

}  // namespace

std::optional<std::string> MmcmConfig::validate(const MmcmLimits& lim) const {
  std::ostringstream err;
  if (fin_mhz <= 0) return "input frequency must be positive";
  if (mult_8ths < lim.mult_min_8ths || mult_8ths > lim.mult_max_8ths) {
    err << "CLKFBOUT_MULT_F=" << mult_8ths / 8.0 << " outside ["
        << lim.mult_min_8ths / 8.0 << ", " << lim.mult_max_8ths / 8.0 << "]";
    return err.str();
  }
  if (divclk < lim.divclk_min || divclk > lim.divclk_max) {
    err << "DIVCLK_DIVIDE=" << divclk << " outside [" << lim.divclk_min << ", "
        << lim.divclk_max << "]";
    return err.str();
  }
  const double pfd = pfd_mhz();
  if (pfd < lim.pfd_min_mhz || pfd > lim.pfd_max_mhz) {
    err << "PFD frequency " << pfd << " MHz outside [" << lim.pfd_min_mhz
        << ", " << lim.pfd_max_mhz << "]";
    return err.str();
  }
  const double vco = vco_mhz();
  if (vco < lim.vco_min_mhz || vco > lim.vco_max_mhz) {
    err << "VCO frequency " << vco << " MHz outside [" << lim.vco_min_mhz
        << ", " << lim.vco_max_mhz << "]";
    return err.str();
  }
  for (int k = 0; k < kMmcmOutputs; ++k) {
    const int d = out_div_8ths[static_cast<std::size_t>(k)];
    if (d < lim.out_div_min_8ths || d > lim.out_div_max_8ths) {
      err << "CLKOUT" << k << "_DIVIDE=" << d / 8.0 << " outside ["
          << lim.out_div_min_8ths / 8.0 << ", " << lim.out_div_max_8ths / 8.0
          << "]";
      return err.str();
    }
    if ((k != 0 || !lim.fractional_clkout0) && !is_whole(d)) {
      err << "CLKOUT" << k << "_DIVIDE=" << d / 8.0
          << " fractional divide is not available on this output";
      return err.str();
    }
  }
  return std::nullopt;
}

std::optional<SynthesisResult> synthesize_frequency(double fin_mhz,
                                                    double target_mhz,
                                                    int output_index,
                                                    const MmcmLimits& lim) {
  if (target_mhz <= 0) return std::nullopt;
  const bool fractional = (output_index == 0) && lim.fractional_clkout0;
  SynthesisResult best;
  double best_err = std::numeric_limits<double>::infinity();

  for (int d = lim.divclk_min; d <= lim.divclk_max; ++d) {
    const double pfd = fin_mhz / d;
    if (pfd < lim.pfd_min_mhz) break;  // d only grows from here
    if (pfd > lim.pfd_max_mhz) continue;
    // Legal multiplier range for this d so the VCO stays in band.
    const int m_lo = std::max(
        lim.mult_min_8ths,
        static_cast<int>(std::ceil(lim.vco_min_mhz * d / fin_mhz * 8.0)));
    const int m_hi = std::min(
        lim.mult_max_8ths,
        static_cast<int>(std::floor(lim.vco_max_mhz * d / fin_mhz * 8.0)));
    for (int m = m_lo; m <= m_hi; ++m) {
      const double vco = fin_mhz * (m / 8.0) / d;
      const int div8 = best_divider_8ths(vco, target_mhz, fractional, lim);
      const double achieved = vco / (div8 / 8.0);
      const double err = std::fabs(achieved - target_mhz);
      if (err < best_err) {
        best_err = err;
        best.config = MmcmConfig{};
        best.config.fin_mhz = fin_mhz;
        best.config.mult_8ths = m;
        best.config.divclk = d;
        best.config.out_div_8ths.fill(lim.out_div_max_8ths);
        best.config.out_div_8ths[static_cast<std::size_t>(output_index)] = div8;
        best.config.out_enabled.fill(false);
        best.config.out_enabled[static_cast<std::size_t>(output_index)] = true;
        best.output_index = output_index;
        best.achieved_mhz = achieved;
        best.error_mhz = err;
      }
    }
  }
  if (!std::isfinite(best_err)) return std::nullopt;
  if (auto why = best.config.validate(lim)) return std::nullopt;
  return best;
}

std::optional<MmcmConfig> synthesize_frequency_set(
    double fin_mhz, const std::array<double, kMmcmOutputs>& targets_mhz,
    int count, const MmcmLimits& lim) {
  if (count < 1 || count > kMmcmOutputs) return std::nullopt;
  std::optional<MmcmConfig> best;
  double best_err = std::numeric_limits<double>::infinity();

  for (int d = lim.divclk_min; d <= lim.divclk_max; ++d) {
    const double pfd = fin_mhz / d;
    if (pfd < lim.pfd_min_mhz) break;
    if (pfd > lim.pfd_max_mhz) continue;
    const int m_lo = std::max(
        lim.mult_min_8ths,
        static_cast<int>(std::ceil(lim.vco_min_mhz * d / fin_mhz * 8.0)));
    const int m_hi = std::min(
        lim.mult_max_8ths,
        static_cast<int>(std::floor(lim.vco_max_mhz * d / fin_mhz * 8.0)));
    for (int m = m_lo; m <= m_hi; ++m) {
      const double vco = fin_mhz * (m / 8.0) / d;
      MmcmConfig cfg;
      cfg.fin_mhz = fin_mhz;
      cfg.mult_8ths = m;
      cfg.divclk = d;
      cfg.out_div_8ths.fill(lim.out_div_max_8ths);
      cfg.out_enabled.fill(false);
      double err = 0.0;
      for (int k = 0; k < count; ++k) {
        const double t = targets_mhz[static_cast<std::size_t>(k)];
        const int div8 = best_divider_8ths(
            vco, t, /*fractional=*/k == 0 && lim.fractional_clkout0, lim);
        cfg.out_div_8ths[static_cast<std::size_t>(k)] = div8;
        cfg.out_enabled[static_cast<std::size_t>(k)] = true;
        const double achieved = vco / (div8 / 8.0);
        err += std::fabs(achieved - t) / t;
      }
      if (err < best_err) {
        best_err = err;
        best = cfg;
      }
    }
  }
  if (best && best->validate(lim)) return std::nullopt;
  return best;
}

}  // namespace rftc::clk
