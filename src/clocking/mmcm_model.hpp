// Behavioural model of one MMCME2 primitive: DRP register file, reset/lock
// sequencing, and output clock synthesis.
//
// Timing model: the MMCM is a passive component addressed through its DRP
// port; the caller (DrpController) owns the DCLK cycle accounting.  What the
// MMCM model owns is the *lock* behaviour: output clocks are valid only
// while LOCKED is high, LOCKED drops on reset assertion, and rises
// lock_cycles(config) PFD cycles after reset release — which is how the
// 34 us reconfiguration figure of the paper (§5) arises at a 24 MHz input.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "clocking/drp_codec.hpp"
#include "clocking/mmcm_config.hpp"
#include "util/time_types.hpp"

namespace rftc::clk {

/// Sentinel lock time of an MMCM that will never lock again (injected
/// lock-loss, or a corrupted register image held in reset).  Far enough from
/// the int64 ceiling that schedule arithmetic cannot overflow past it.
inline constexpr Picoseconds kNeverLocksPs =
    std::numeric_limits<Picoseconds>::max() / 4;

class MmcmModel {
 public:
  /// Constructs with an initial configuration (as loaded from the bitstream)
  /// and starts locked at t=0.  `limits` selects the device rule set
  /// (7-series MMCM by default; altera_iopll_limits() for an IOPLL).
  explicit MmcmModel(MmcmConfig initial, MmcmLimits limits = {});

  // --- DRP port -----------------------------------------------------------
  /// One DRP read transaction.
  std::uint16_t drp_read(std::uint8_t addr) const;
  /// One DRP write transaction with read-modify-write mask semantics.
  /// Writes are only legal while the MMCM is held in reset (XAPP888
  /// requirement); a write while running throws std::logic_error.
  void drp_write(std::uint8_t addr, std::uint16_t data, std::uint16_t mask);

  // --- Reset / lock -------------------------------------------------------
  void assert_reset(Picoseconds now);
  /// Releases reset: the register file is latched into the active
  /// configuration and LOCKED will rise after the lock time.
  void release_reset(Picoseconds now);
  bool in_reset() const { return in_reset_; }
  bool locked(Picoseconds now) const { return !in_reset_ && now >= locked_at_; }
  Picoseconds locked_at() const { return locked_at_; }

  /// Fault hook: the analogue lock detector gave up mid-reconfiguration —
  /// LOCKED will never rise (locked_at() becomes kNeverLocksPs) until the
  /// next assert_reset/release_reset cycle.
  void drop_lock();

  // --- Clock outputs ------------------------------------------------------
  /// The configuration currently driving the VCO (latched at last reset
  /// release, NOT the possibly half-written register file).
  const MmcmConfig& active_config() const { return active_; }
  /// The configuration described by the register file right now.
  MmcmConfig staged_config() const;
  /// Diagnostic for the staged register image: nullopt when it decodes to
  /// an electrically legal configuration, otherwise why not.  The DRP
  /// controller consults this before releasing reset when fault injection
  /// is armed, so a corrupted image is never latched into the VCO.
  std::optional<std::string> staged_error() const;
  const MmcmLimits& limits() const { return limits_; }
  /// Active output period; throws if the output index is out of range.
  Picoseconds output_period_ps(int k) const;

  /// Lock wait (ps) for the *staged* configuration at the current input.
  Picoseconds lock_time_ps() const;

 private:
  std::array<std::uint16_t, 128> regs_{};
  MmcmLimits limits_;
  MmcmConfig active_;
  bool in_reset_ = false;
  Picoseconds locked_at_ = 0;
};

}  // namespace rftc::clk
