// Block RAM model storing precalculated MMCM reconfiguration words.
//
// The paper stores P configurations per clock output in Block RAM and
// reports "RFTC(3, 1024) takes 20 Block RAMs (RAMB36E1 components)" (§7).
// Each stored entry is one DRP transaction: {7-bit address, 16-bit data,
// 16-bit mask} packed into a 39-bit word (we charge 40 bits to the RAM for
// alignment, matching the 36Kb + parity organisation of a RAMB36E1).
#pragma once

#include <cstdint>
#include <vector>

#include "clocking/drp_codec.hpp"

namespace rftc::clk {

/// Capacity of one RAMB36E1 in bits (36 Kb including parity bits).
inline constexpr std::uint64_t kRamb36Bits = 36 * 1024;

/// ROM of reconfiguration sequences, one per configuration index.
class ConfigStore {
 public:
  /// Builds the store from a list of MMCM configurations; every
  /// configuration is encoded to its DRP write sequence at build time
  /// ("precalculated ... and stored in Block RAM", §4).
  explicit ConfigStore(const std::vector<MmcmConfig>& configs,
                       const MmcmLimits& limits = {});

  std::size_t config_count() const { return index_.size(); }
  /// The write sequence for configuration `idx` (1-cycle BRAM latency in
  /// hardware; latency is charged by the DRP controller's cycle model).
  std::vector<DrpWrite> fetch(std::size_t idx) const;
  /// The decoded configuration (for inspection and tests).
  const MmcmConfig& config(std::size_t idx) const { return configs_.at(idx); }

  /// Total stored bits and the resulting RAMB36E1 count.
  std::uint64_t stored_bits() const;
  unsigned ramb36_count() const;

  /// Bits per stored DRP entry (addr + data + mask, byte-aligned).
  static constexpr std::uint64_t kBitsPerEntry = 40;

 private:
  struct Range {
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<MmcmConfig> configs_;
  std::vector<Range> index_;
  std::vector<DrpWrite> entries_;
};

}  // namespace rftc::clk
