#include "clocking/drp_codec.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rftc::clk {

namespace drp_addr {

std::uint8_t clkout_reg1(int output) {
  switch (output) {
    case 0: return kClkout0Reg1;
    case 1: return kClkout1Reg1;
    case 2: return kClkout2Reg1;
    case 3: return kClkout3Reg1;
    case 4: return kClkout4Reg1;
    case 5: return kClkout5Reg1;
    case 6: return kClkout6Reg1;
    default: throw std::out_of_range("clkout_reg1: bad output index");
  }
}

std::uint8_t clkout_reg2(int output) {
  return static_cast<std::uint8_t>(clkout_reg1(output) + 1);
}

}  // namespace drp_addr

namespace {

// 6-bit counter fields use the hardware convention that a stored value of 0
// means a count of 64, extending the reach of the counters to divide-by-128.
unsigned field_from_count(unsigned count) {
  assert(count >= 1 && count <= 64);
  return count & 0x3F;
}

unsigned count_from_field(unsigned field) { return field == 0 ? 64 : field; }

}  // namespace

CounterFields encode_counter(int divider_8ths) {
  if (divider_8ths < 8 || divider_8ths > 128 * 8)
    throw std::out_of_range("encode_counter: divider out of [1, 128]");
  CounterFields f;
  const unsigned whole = static_cast<unsigned>(divider_8ths / 8);
  const unsigned frac = static_cast<unsigned>(divider_8ths % 8);
  f.frac_8ths = frac;
  f.frac_en = frac != 0;
  if (whole == 1 && frac == 0) {
    f.no_count = true;
    f.high = f.low = 1;
    return f;
  }
  f.high = whole / 2;
  f.low = whole - f.high;
  if (f.high == 0) {  // whole == 1 with fraction: counter still runs
    f.high = 1;
    f.low = 1;
    f.edge = false;
    // Mark the "whole part is 1" case through NO_COUNT with FRAC_EN set, as
    // the fractional counter bypasses the integer high/low pair.
    f.no_count = true;
    return f;
  }
  f.edge = (whole % 2) != 0;
  return f;
}

int decode_counter(const CounterFields& f) {
  const int frac = f.frac_en ? static_cast<int>(f.frac_8ths) : 0;
  if (f.no_count) return 8 + frac;
  return static_cast<int>(f.high + f.low) * 8 + frac;
}

std::uint16_t pack_reg1(const CounterFields& f) {
  return static_cast<std::uint16_t>(
      ((field_from_count(f.high) & 0x3F) << 6) |
      (field_from_count(f.low) & 0x3F));
}

std::uint16_t pack_reg2(const CounterFields& f) {
  std::uint16_t v = 0;
  v |= static_cast<std::uint16_t>((f.frac_8ths & 0x3) << 12);
  v |= static_cast<std::uint16_t>((f.frac_en ? 1 : 0) << 11);
  v |= static_cast<std::uint16_t>(((f.frac_8ths >> 2) & 0x1) << 10);
  v |= static_cast<std::uint16_t>((f.edge ? 1 : 0) << 7);
  v |= static_cast<std::uint16_t>((f.no_count ? 1 : 0) << 6);
  return v;
}

CounterFields unpack_regs(std::uint16_t reg1, std::uint16_t reg2) {
  CounterFields f;
  f.high = count_from_field((reg1 >> 6) & 0x3F);
  f.low = count_from_field(reg1 & 0x3F);
  f.frac_8ths = static_cast<unsigned>(((reg2 >> 12) & 0x3) |
                                      (((reg2 >> 10) & 0x1) << 2));
  f.frac_en = ((reg2 >> 11) & 1) != 0;
  f.edge = ((reg2 >> 7) & 1) != 0;
  f.no_count = ((reg2 >> 6) & 1) != 0;
  if (!f.frac_en) f.frac_8ths = 0;
  return f;
}

std::uint16_t pack_divclk(int divclk) {
  if (divclk < 1 || divclk > 128)
    throw std::out_of_range("pack_divclk: divider out of [1, 128]");
  if (divclk == 1) return static_cast<std::uint16_t>(1u << 12);  // NO_COUNT
  const unsigned high = static_cast<unsigned>(divclk) / 2;
  const unsigned low = static_cast<unsigned>(divclk) - high;
  const unsigned edge = static_cast<unsigned>(divclk) % 2;
  return static_cast<std::uint16_t>((edge << 13) |
                                    ((field_from_count(high) & 0x3F) << 6) |
                                    (field_from_count(low) & 0x3F));
}

int unpack_divclk(std::uint16_t reg) {
  if ((reg >> 12) & 1) return 1;
  const unsigned high = count_from_field((reg >> 6) & 0x3F);
  const unsigned low = count_from_field(reg & 0x3F);
  return static_cast<int>(high + low);
}

LockConfig lock_config_for_mult(int mult_8ths) {
  // Monotone-decreasing lock count in the feedback multiplier, shaped after
  // the XAPP888 lock table and calibrated so the SASEBO-GIII operating
  // point (fin=24 MHz, M~50) locks in ~34 us as reported in the paper.
  const double mult = mult_8ths / 8.0;
  LockConfig lc;
  lc.lock_cnt = static_cast<unsigned>(
      std::clamp(std::lround(24000.0 / mult), 250L, 1000L));
  lc.lock_ref_dly = static_cast<unsigned>(
      std::clamp(std::lround(mult / 2.0), 4L, 31L));
  lc.lock_sat_high = static_cast<unsigned>(
      std::clamp(std::lround(1000.0 - 9.0 * mult), 250L, 1000L) & 0x3FF);
  return lc;
}

std::uint32_t lock_cycles(const MmcmConfig& cfg) {
  // Lock detection counts PFD (= CLKIN/DIVCLK) reference cycles.
  return lock_config_for_mult(cfg.mult_8ths).lock_cnt *
         static_cast<std::uint32_t>(cfg.divclk);
}

std::vector<DrpWrite> encode_config(const MmcmConfig& cfg,
                                    const MmcmLimits& limits) {
  if (auto why = cfg.validate(limits))
    throw std::invalid_argument("encode_config: illegal config: " + *why);
  std::vector<DrpWrite> w;
  w.reserve(2 + 2 * kMmcmOutputs + 2 + 3 + 2);

  // XAPP888 step 1: unmask the power register (all interpolators on).
  w.push_back({drp_addr::kPower, 0xFFFF, 0xFFFF});

  for (int k = 0; k < kMmcmOutputs; ++k) {
    const CounterFields f =
        encode_counter(cfg.out_div_8ths[static_cast<std::size_t>(k)]);
    w.push_back({drp_addr::clkout_reg1(k), pack_reg1(f), 0xEFFF});
    w.push_back({drp_addr::clkout_reg2(k), pack_reg2(f), 0x3FFF});
  }

  const CounterFields fb = encode_counter(cfg.mult_8ths);
  w.push_back({drp_addr::kClkFbReg1, pack_reg1(fb), 0xEFFF});
  w.push_back({drp_addr::kClkFbReg2, pack_reg2(fb), 0x3FFF});
  w.push_back({drp_addr::kDivClk, pack_divclk(cfg.divclk), 0x3FFF});

  const LockConfig lc = lock_config_for_mult(cfg.mult_8ths);
  w.push_back({drp_addr::kLockReg1,
               static_cast<std::uint16_t>(lc.lock_cnt & 0x3FF), 0x03FF});
  w.push_back({drp_addr::kLockReg2,
               static_cast<std::uint16_t>(((lc.lock_ref_dly & 0x1F) << 10) |
                                          (lc.lock_sat_high & 0x3FF)),
               0x7FFF});
  w.push_back({drp_addr::kLockReg3,
               static_cast<std::uint16_t>(((lc.lock_ref_dly & 0x1F) << 10) |
                                          0x03E8),
               0x7FFF});

  // Filter words depend only on the multiplier band (loop bandwidth).
  const std::uint16_t filt =
      static_cast<std::uint16_t>(0x0800 | ((cfg.mult_8ths / 8) & 0x3F));
  w.push_back({drp_addr::kFiltReg1, filt, 0x9900});
  w.push_back({drp_addr::kFiltReg2, filt, 0x9990});
  return w;
}

MmcmConfig decode_config(const std::array<std::uint16_t, 128>& regs,
                         double fin_mhz) {
  MmcmConfig cfg;
  cfg.fin_mhz = fin_mhz;
  for (int k = 0; k < kMmcmOutputs; ++k) {
    const CounterFields f =
        unpack_regs(regs[drp_addr::clkout_reg1(k)], regs[drp_addr::clkout_reg2(k)]);
    cfg.out_div_8ths[static_cast<std::size_t>(k)] = decode_counter(f);
    // BUFG presence is a design-time property, not register state; the
    // decoded image reports every output as available.
    cfg.out_enabled[static_cast<std::size_t>(k)] = true;
  }
  const CounterFields fb =
      unpack_regs(regs[drp_addr::kClkFbReg1], regs[drp_addr::kClkFbReg2]);
  cfg.mult_8ths = decode_counter(fb);
  cfg.divclk = unpack_divclk(regs[drp_addr::kDivClk]);
  return cfg;
}

}  // namespace rftc::clk
