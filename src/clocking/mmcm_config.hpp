// Xilinx 7-series MMCM (MMCME2) configuration model.
//
// An MMCM synthesizes output clocks as
//
//   f_out[k] = f_in * CLKFBOUT_MULT_F / (DIVCLK_DIVIDE * CLKOUT[k]_DIVIDE)
//
// subject to the electrical limits of the part (UG472 / DS182):
//   * VCO frequency  f_vco = f_in * M / D must stay within [600, 1200] MHz
//     (Kintex-7 -1 speed grade, the SASEBO-GIII part used by the paper),
//   * CLKFBOUT_MULT_F in [2.000, 64.000] in steps of 0.125,
//   * DIVCLK_DIVIDE in [1, 106],
//   * CLKOUT0_DIVIDE_F in [1.000, 128.000] in steps of 0.125,
//   * CLKOUT1..6_DIVIDE integer in [1, 128],
//   * PFD frequency f_in / D within [10, 550] MHz.
//
// All fractional values are held in eighths (units of 1/8) so the model is
// exact — there is no floating-point state anywhere in a configuration.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "util/time_types.hpp"

namespace rftc::clk {

/// Number of clock outputs per MMCM (CLKOUT0..CLKOUT6 exist in silicon;
/// the paper describes "typically six" usable outputs [21]).
inline constexpr int kMmcmOutputs = 7;

/// Electrical limits of the modelled device (Kintex-7, -1 speed grade).
struct MmcmLimits {
  double vco_min_mhz = 600.0;
  double vco_max_mhz = 1200.0;
  double pfd_min_mhz = 10.0;
  double pfd_max_mhz = 550.0;
  int mult_min_8ths = 2 * 8;     // CLKFBOUT_MULT_F >= 2.000
  int mult_max_8ths = 64 * 8;    // <= 64.000
  int divclk_min = 1;
  int divclk_max = 106;
  int out_div_min_8ths = 1 * 8;  // CLKOUT0_DIVIDE_F >= 1.000
  int out_div_max_8ths = 128 * 8;
  /// Whether output 0 supports fractional (1/8-step) division.  True for
  /// 7-series MMCMs (CLKOUT0_DIVIDE_F).
  bool fractional_clkout0 = true;
};

/// Altera/Intel IOPLL limits (§8: "RFTC is not limited to Xilinx FPGAs").
/// Modelled after the Cyclone/Arria IOPLL: wider VCO band, integer output
/// counters only (the fractional capability sits in the feedback path,
/// which the eighths-granular multiplier already covers).
MmcmLimits altera_iopll_limits();

/// A complete MMCM attribute set.  Invariant: once `validate` returns
/// success the configuration is electrically legal for `limits`.
struct MmcmConfig {
  /// Input clock frequency (board oscillator), MHz.
  double fin_mhz = 24.0;
  /// CLKFBOUT_MULT_F in eighths (e.g. 50.125 -> 401).
  int mult_8ths = 50 * 8;
  /// DIVCLK_DIVIDE.
  int divclk = 1;
  /// Per-output divider in eighths.  Only output 0 may be fractional
  /// (non-multiple of 8); outputs 1..6 must be whole numbers of eighths*8.
  std::array<int, kMmcmOutputs> out_div_8ths{8, 8, 8, 8, 8, 8, 8};
  /// Which outputs are in use (drive a BUFG).
  std::array<bool, kMmcmOutputs> out_enabled{true, false, false, false,
                                             false, false, false};

  double vco_mhz() const {
    return fin_mhz * (static_cast<double>(mult_8ths) / 8.0) /
           static_cast<double>(divclk);
  }
  double pfd_mhz() const { return fin_mhz / static_cast<double>(divclk); }
  double output_mhz(int k) const {
    return vco_mhz() / (static_cast<double>(out_div_8ths[static_cast<std::size_t>(k)]) / 8.0);
  }
  /// Output clock period in integer picoseconds.
  Picoseconds output_period_ps(int k) const {
    return period_ps_from_mhz(output_mhz(k));
  }

  /// Empty optional when legal; otherwise a diagnostic.
  std::optional<std::string> validate(const MmcmLimits& limits = {}) const;
};

/// Result of frequency synthesis: the chosen attributes plus the achieved
/// frequency (which in general differs slightly from the request).
struct SynthesisResult {
  MmcmConfig config;
  int output_index = 0;
  double achieved_mhz = 0.0;
  double error_mhz = 0.0;
};

/// Finds MMCM attributes producing the closest achievable frequency to
/// `target_mhz` on output `output_index` (fractional divide allowed only on
/// output 0).  Returns nullopt when the target is unreachable within limits.
std::optional<SynthesisResult> synthesize_frequency(
    double fin_mhz, double target_mhz, int output_index = 0,
    const MmcmLimits& limits = {});

/// Finds one attribute set whose outputs 0..count-1 are simultaneously as
/// close as possible to the requested targets.  This is the constraint the
/// paper leans on ("MMCM_DRP module has to have all M clock outputs
/// dynamically reconfigured", §4): all M frequencies of a set share one VCO.
/// Greedy: picks the (M, D) whose VCO minimizes the summed relative error of
/// the best per-output dividers.
std::optional<MmcmConfig> synthesize_frequency_set(
    double fin_mhz, const std::array<double, kMmcmOutputs>& targets_mhz,
    int count, const MmcmLimits& limits = {});

}  // namespace rftc::clk
