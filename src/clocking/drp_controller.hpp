// The MMCM_DRP reconfiguration state machine of XAPP888, at transaction
// granularity.
//
// The hardware FSM walks: RESTART -> WAIT_LOCK -> ... -> ADDRESS -> READ ->
// WAIT_READ -> BIT_MASK -> BIT_SET -> WRITE -> WAIT_WRITE per register, with
// the MMCM held in reset for the whole sequence.  This model charges the
// documented DCLK cycle counts per transaction and returns the absolute
// times of the interesting events so the RFTC controller can schedule the
// ping-pong (§4: "the other N−1 MMCMs can drive the AES circuit" while one
// reconfigures).
#pragma once

#include <cstdint>
#include <span>

#include "clocking/mmcm_model.hpp"

namespace rftc::fault {
class FaultInjector;
}  // namespace rftc::fault

namespace rftc::clk {

struct ReconfigReport {
  Picoseconds started = 0;
  /// When the last DRP write completed and reset was released.
  Picoseconds writes_done = 0;
  /// When LOCKED rose (reconfiguration complete; clock usable).  On a
  /// failed sequence this is kNeverLocksPs: the watchdog, not a lock event,
  /// ends the wait.
  Picoseconds locked = 0;
  unsigned drp_transactions = 0;
  std::uint64_t dclk_cycles = 0;
  /// True when the sequence did not end in a usable lock: a corrupted
  /// register image held in reset, or an injected lock-loss.
  bool lock_failed = false;
  unsigned corrupted_writes = 0;
  unsigned dropped_writes = 0;
};

class DrpController {
 public:
  /// `dclk_mhz` is the clock feeding the DRP port and the FSM — the board
  /// oscillator (24 MHz on SASEBO-GIII).
  explicit DrpController(double dclk_mhz);

  /// Runs the full XAPP888 sequence against `mmcm`, starting at
  /// `start`: assert reset, read-modify-write every register of `target`,
  /// release reset, and report when LOCKED rises.  `limits` must match the
  /// device rule set the MMCM model was built with.
  ReconfigReport reconfigure(MmcmModel& mmcm, const MmcmConfig& target,
                             Picoseconds start, const MmcmLimits& limits = {});

  /// Same sequence driven from a precomputed write stream (the Block RAM
  /// path the RFTC controller uses at runtime).
  ReconfigReport apply(MmcmModel& mmcm, std::span<const DrpWrite> writes,
                       Picoseconds start);

  double dclk_mhz() const { return dclk_mhz_; }

  /// Arms fault injection on every subsequent sequence (nullptr disarms).
  /// With no injector the controller takes the exact pre-fault code path:
  /// no extra randomness, no staged-image validation, identical reports.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_; }

 private:
  double dclk_mhz_;
  Picoseconds dclk_period_;
  fault::FaultInjector* fault_ = nullptr;
};

// Per-transaction DCLK cycle costs of the XAPP888 FSM.
inline constexpr unsigned kDrpReadCycles = 3;   // ADDRESS, READ, WAIT_READ
inline constexpr unsigned kDrpModifyCycles = 2; // BIT_MASK, BIT_SET
inline constexpr unsigned kDrpWriteCycles = 3;  // WRITE, WAIT_WRITE, DRDY
inline constexpr unsigned kDrpRestartCycles = 4;

}  // namespace rftc::clk
