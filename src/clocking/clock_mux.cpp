#include "clocking/clock_mux.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace rftc::clk {

Picoseconds switch_latency(Picoseconds from_ps, Picoseconds to_ps,
                           Picoseconds from_phase_ps,
                           Picoseconds to_phase_ps) {
  if (from_ps <= 0 || to_ps <= 0)
    throw std::invalid_argument("switch_latency: non-positive period");
  // Step 1: wait for the falling edge of the old clock (half period mark).
  const Picoseconds from_half = from_ps / 2;
  Picoseconds t = 0;
  Picoseconds phase = from_phase_ps % from_ps;
  if (phase < from_half) {
    t += from_half - phase;  // currently high: wait for the fall
  }  // currently low: no wait
  // Step 2: from that instant, wait for the next rising edge of the new
  // clock that is preceded by a low phase (BUFGCTRL synchronizer).
  Picoseconds to_phase = (to_phase_ps + t) % to_ps;
  const Picoseconds to_half = to_ps / 2;
  if (to_phase < to_half) {
    // New clock is high: wait for it to fall, then a full low phase.
    t += (to_half - to_phase) + (to_ps - to_half);
  } else {
    // New clock is low: wait for its rising edge.
    t += to_ps - to_phase;
  }
  return t;
}

Picoseconds worst_case_switch_latency(Picoseconds from_ps, Picoseconds to_ps) {
  if (from_ps <= 0 || to_ps <= 0)
    throw std::invalid_argument(
        "worst_case_switch_latency: non-positive period");
  // Worst case of step 1 is a full high phase of the old clock; worst case
  // of step 2 is catching the new clock right after its rising edge: a wait
  // through the rest of its high phase plus a full low phase.
  return from_ps / 2 + to_ps;
}

MuxedClock::MuxedClock(std::vector<Picoseconds> source_periods,
                       bool model_overhead, Picoseconds start)
    : periods_(std::move(source_periods)),
      model_overhead_(model_overhead),
      now_(start) {
  if (periods_.empty())
    throw std::invalid_argument("MuxedClock: no sources");
  for (const Picoseconds p : periods_)
    if (p <= 0) throw std::invalid_argument("MuxedClock: bad period");
}

Picoseconds MuxedClock::advance(int sel) {
  if (sel < 0 || static_cast<std::size_t>(sel) >= periods_.size())
    throw std::out_of_range("MuxedClock::advance: bad select");
  if (!first_ && sel != sel_) {
    static obs::Counter& switches =
        obs::Registry::global().counter("clk.mux.switches");
    switches.inc();
    RFTC_OBS_INSTANT("clk", "mux.switch", {"sel", static_cast<double>(sel)});
    if (model_overhead_) {
      // All sources free-run from t=0, so each clock's phase at `now_` is
      // simply now_ mod period.
      const Picoseconds from = periods_[static_cast<std::size_t>(sel_)];
      const Picoseconds to = periods_[static_cast<std::size_t>(sel)];
      now_ += switch_latency(from, to, now_ % from, now_ % to);
    }
  }
  sel_ = sel;
  first_ = false;
  now_ += periods_[static_cast<std::size_t>(sel)];
  return now_;
}

void MuxedClock::retarget(std::vector<Picoseconds> source_periods) {
  if (source_periods.size() != periods_.size())
    throw std::invalid_argument("MuxedClock::retarget: source count changed");
  for (const Picoseconds p : source_periods)
    if (p <= 0) throw std::invalid_argument("MuxedClock::retarget: bad period");
  periods_ = std::move(source_periods);
}

}  // namespace rftc::clk
