#include "clocking/block_ram.hpp"

namespace rftc::clk {

ConfigStore::ConfigStore(const std::vector<MmcmConfig>& configs,
                         const MmcmLimits& limits)
    : configs_(configs) {
  index_.reserve(configs.size());
  for (const MmcmConfig& cfg : configs) {
    auto writes = encode_config(cfg, limits);
    index_.push_back({entries_.size(), writes.size()});
    entries_.insert(entries_.end(), writes.begin(), writes.end());
  }
}

std::vector<DrpWrite> ConfigStore::fetch(std::size_t idx) const {
  const Range r = index_.at(idx);
  return {entries_.begin() + static_cast<std::ptrdiff_t>(r.first),
          entries_.begin() + static_cast<std::ptrdiff_t>(r.first + r.count)};
}

std::uint64_t ConfigStore::stored_bits() const {
  return static_cast<std::uint64_t>(entries_.size()) * kBitsPerEntry;
}

unsigned ConfigStore::ramb36_count() const {
  return static_cast<unsigned>((stored_bits() + kRamb36Bits - 1) /
                               kRamb36Bits);
}

}  // namespace rftc::clk
