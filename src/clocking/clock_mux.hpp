// Glitch-free clock multiplexer (BUFGMUX / BUFGCTRL) model.
//
// A BUFGMUX never emits a runt pulse: on a select change it first completes
// the low phase of the currently selected clock, keeps the output low until
// the newly selected clock is itself low, and then passes the new clock from
// its next rising edge (UG472).  RFTC uses one such mux per MMCM to pick one
// of the M outputs per AES round, plus one to pick between the N MMCMs.
//
// Two levels of abstraction are provided:
//  * `switch_latency` — edge-accurate dead time of one switch, used by the
//    ablation bench that quantifies how much real switching overhead would
//    perturb the paper's idealized completion-time arithmetic, and
//  * `MuxedClock` — a period-level iterator that yields one full period of
//    the selected clock per round (the idealization under which the paper's
//    C(R+M−1, R) completion-time count holds).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/time_types.hpp"

namespace rftc::clk {

/// Dead time of a glitch-free switch from a clock of period `from_ps` to a
/// clock of period `to_ps`, given the phase of each clock at the moment of
/// the select change (`from_phase_ps`, `to_phase_ps`, both in [0, period)).
/// Returns the delay until the first rising edge of the new clock appears at
/// the mux output.
Picoseconds switch_latency(Picoseconds from_ps, Picoseconds to_ps,
                           Picoseconds from_phase_ps,
                           Picoseconds to_phase_ps);

/// Upper bound of switch_latency over all phases: the dead time a select
/// change must be granted before the new clock's first output edge is
/// guaranteed clean.  A switch taken sooner — which is exactly what the
/// paper's idealized per-round selection does, since its completion-time
/// arithmetic charges no overhead — risks a runt pulse; the mux-glitch
/// fault family (fault::FaultSpec::mux_glitch_rate) models that hazard.
Picoseconds worst_case_switch_latency(Picoseconds from_ps, Picoseconds to_ps);

/// Period-level muxed clock: a set of source periods and a glitch-free
/// select.  `advance(sel)` consumes one full period of source `sel` and
/// returns the rising-edge time that ends it.  Optionally charges the
/// glitch-free switch overhead on select changes.
class MuxedClock {
 public:
  MuxedClock(std::vector<Picoseconds> source_periods, bool model_overhead,
             Picoseconds start = 0);

  /// Clock one consumer cycle from source `sel`; returns the edge time.
  Picoseconds advance(int sel);

  Picoseconds now() const { return now_; }
  int selected() const { return sel_; }
  const std::vector<Picoseconds>& source_periods() const { return periods_; }
  /// Replace the source periods (MMCM was reconfigured behind this mux).
  void retarget(std::vector<Picoseconds> source_periods);

 private:
  std::vector<Picoseconds> periods_;
  bool model_overhead_;
  Picoseconds now_;
  int sel_ = 0;
  bool first_ = true;
};

}  // namespace rftc::clk
