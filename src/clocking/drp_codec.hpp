// DRP register codec for MMCME2 dynamic reconfiguration, after Xilinx
// XAPP888 ("MMCM and PLL Dynamic Reconfiguration", Tatsukawa).
//
// Every counter (CLKOUT0..6, CLKFBOUT, DIVCLK) is programmed through one or
// two 16-bit DRP registers:
//
//   ClkReg1  [15:13] PHASE_MUX   (phase in VCO/8 steps; unused here)
//            [12]    reserved
//            [11:6]  HIGH_TIME   (VCO cycles the output is high)
//            [5:0]   LOW_TIME    (VCO cycles the output is low)
//
//   ClkReg2  [15:14] reserved
//            [13:12] FRAC        (fractional eighths, CLKOUT0/CLKFBOUT only,
//                                 lower 2 of 3 bits; bit 2 in [10])
//            [11]    FRAC_EN
//            [10]    FRAC bit 2
//            [9:8]   MX          (must be 0b00 per XAPP888)
//            [7]     EDGE        (duty-cycle correction for odd divides)
//            [6]     NO_COUNT    (bypass counter: divide-by-1)
//            [5:0]   DELAY_TIME  (coarse phase delay; unused here)
//
// The DIVCLK counter uses a single register with the same HIGH/LOW split and
// EDGE/NO_COUNT in [13:12].  The register *addresses* follow XAPP888 Table 2
// for MMCME2.  The codec is exact and round-trips: encode(decode(x)) == x
// for every legal divider, which the unit tests sweep exhaustively.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "clocking/mmcm_config.hpp"

namespace rftc::clk {

/// One DRP write: 7-bit address, 16-bit data, and the bitmask of data bits
/// the write owns (read-modify-write semantics, as the XAPP888 FSM does).
struct DrpWrite {
  std::uint8_t addr = 0;
  std::uint16_t data = 0;
  std::uint16_t mask = 0xFFFF;
};

/// DRP addresses (MMCME2, XAPP888 Table 2).
namespace drp_addr {
inline constexpr std::uint8_t kPower = 0x28;
inline constexpr std::uint8_t kClkout0Reg1 = 0x08;
inline constexpr std::uint8_t kClkout0Reg2 = 0x09;
inline constexpr std::uint8_t kClkout1Reg1 = 0x0A;
inline constexpr std::uint8_t kClkout1Reg2 = 0x0B;
inline constexpr std::uint8_t kClkout2Reg1 = 0x0C;
inline constexpr std::uint8_t kClkout2Reg2 = 0x0D;
inline constexpr std::uint8_t kClkout3Reg1 = 0x0E;
inline constexpr std::uint8_t kClkout3Reg2 = 0x0F;
inline constexpr std::uint8_t kClkout4Reg1 = 0x10;
inline constexpr std::uint8_t kClkout4Reg2 = 0x11;
inline constexpr std::uint8_t kClkout5Reg1 = 0x06;
inline constexpr std::uint8_t kClkout5Reg2 = 0x07;
inline constexpr std::uint8_t kClkout6Reg1 = 0x12;
inline constexpr std::uint8_t kClkout6Reg2 = 0x13;
inline constexpr std::uint8_t kClkFbReg1 = 0x14;
inline constexpr std::uint8_t kClkFbReg2 = 0x15;
inline constexpr std::uint8_t kDivClk = 0x16;
inline constexpr std::uint8_t kLockReg1 = 0x18;
inline constexpr std::uint8_t kLockReg2 = 0x19;
inline constexpr std::uint8_t kLockReg3 = 0x1A;
inline constexpr std::uint8_t kFiltReg1 = 0x4E;
inline constexpr std::uint8_t kFiltReg2 = 0x4F;

std::uint8_t clkout_reg1(int output);
std::uint8_t clkout_reg2(int output);
}  // namespace drp_addr

/// Split an integer divider into the HIGH/LOW/EDGE/NO_COUNT fields.
struct CounterFields {
  unsigned high = 1;
  unsigned low = 1;
  bool edge = false;
  bool no_count = false;
  unsigned frac_8ths = 0;  // 0..7, only meaningful with frac_en
  bool frac_en = false;
};

/// Encode a divider given in eighths (8 => divide-by-1) into counter fields.
CounterFields encode_counter(int divider_8ths);
/// Recover the divider (in eighths) from counter fields.
int decode_counter(const CounterFields& f);

/// Pack/unpack the two clock registers.
std::uint16_t pack_reg1(const CounterFields& f);
std::uint16_t pack_reg2(const CounterFields& f);
CounterFields unpack_regs(std::uint16_t reg1, std::uint16_t reg2);

/// Pack/unpack the single DIVCLK register.
std::uint16_t pack_divclk(int divclk);
int unpack_divclk(std::uint16_t reg);

/// Lock-detector configuration word derived from the feedback multiplier.
/// XAPP888 derives LockRefDly/LockSatHigh/LockCnt from a 64-entry table in
/// CLKFBOUT_MULT; this model reproduces the monotone structure (higher
/// multiplication -> more reference cycles to lock) with the property that
/// the default SASEBO-GIII configuration (fin = 24 MHz) locks in ~34 us, the
/// figure reported in §5 of the paper.
struct LockConfig {
  unsigned lock_ref_dly = 0;
  unsigned lock_sat_high = 0;
  unsigned lock_cnt = 0;
};
LockConfig lock_config_for_mult(int mult_8ths);

/// Number of CLKIN cycles from reset release to LOCKED for a configuration.
std::uint32_t lock_cycles(const MmcmConfig& cfg);

/// Full write sequence reprogramming every counter of an MMCM, in XAPP888
/// order: power register first, then all CLKOUT counters, DIVCLK, CLKFBOUT,
/// then lock/filter words.  `limits` selects the electrical rule set the
/// configuration is validated against (7-series MMCM by default).
std::vector<DrpWrite> encode_config(const MmcmConfig& cfg,
                                    const MmcmLimits& limits = {});

/// Rebuild a configuration from a DRP register file (inverse of
/// encode_config as applied to a register image).  `fin_mhz` is external to
/// the register file and must be supplied.
MmcmConfig decode_config(const std::array<std::uint16_t, 128>& regs,
                         double fin_mhz);

}  // namespace rftc::clk
