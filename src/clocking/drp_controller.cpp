#include "clocking/drp_controller.hpp"

#include <stdexcept>

#include "fault/injector.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace rftc::clk {

DrpController::DrpController(double dclk_mhz)
    : dclk_mhz_(dclk_mhz), dclk_period_(period_ps_from_mhz(dclk_mhz)) {
  if (dclk_mhz <= 0) throw std::invalid_argument("DrpController: bad DCLK");
}

ReconfigReport DrpController::reconfigure(MmcmModel& mmcm,
                                          const MmcmConfig& target,
                                          Picoseconds start,
                                          const MmcmLimits& limits) {
  const auto writes = encode_config(target, limits);
  return apply(mmcm, writes, start);
}

ReconfigReport DrpController::apply(MmcmModel& mmcm,
                                    std::span<const DrpWrite> writes,
                                    Picoseconds start) {
  RFTC_OBS_SPAN(span, "clk", "drp.apply");
  static obs::Counter& write_count =
      obs::Registry::global().counter("clk.drp.register_writes");
  static obs::Counter& sequences =
      obs::Registry::global().counter("clk.drp.sequences");
  static obs::Histogram& apply_duration =
      obs::Registry::global().histogram("clk.drp.apply_duration_ps");
  static obs::Counter& failed_sequences =
      obs::Registry::global().counter("clk.drp.failed_sequences");

  ReconfigReport rep;
  rep.started = start;
  std::uint64_t cycles = kDrpRestartCycles;

  mmcm.assert_reset(start + cycles * dclk_period_);

  for (const DrpWrite& w : writes) {
    // READ phase fetches the current register so reserved bits survive.
    cycles += kDrpReadCycles;
    const std::uint16_t current = mmcm.drp_read(w.addr);
    cycles += kDrpModifyCycles;
    auto merged = static_cast<std::uint16_t>(
        (current & ~w.mask) | (w.data & w.mask));
    cycles += kDrpWriteCycles;
    if (fault_ != nullptr && fault_->drop_drp_write()) {
      // DRDY never came back: the FSM times out and moves on while the
      // register keeps its previous contents.
      ++rep.dropped_writes;
    } else {
      if (fault_ != nullptr) {
        if (const auto bad = fault_->corrupt_drp_word(merged)) {
          merged = *bad;
          ++rep.corrupted_writes;
        }
      }
      mmcm.drp_write(w.addr, merged, 0xFFFF);
    }
    ++rep.drp_transactions;
  }

  rep.writes_done = start + static_cast<Picoseconds>(cycles) * dclk_period_;
  if (fault_ != nullptr && mmcm.staged_error().has_value()) {
    // The register image is corrupted beyond electrical legality: keep the
    // MMCM in reset rather than latching garbage into the VCO.  LOCKED
    // never rises; the caller's watchdog ends the wait.
    rep.lock_failed = true;
    rep.locked = kNeverLocksPs;
  } else {
    mmcm.release_reset(rep.writes_done);
    if (fault_ != nullptr && fault_->lose_lock()) mmcm.drop_lock();
    rep.locked = mmcm.locked_at();
    rep.lock_failed = rep.locked >= kNeverLocksPs;
  }
  rep.dclk_cycles = cycles;

  sequences.inc();
  write_count.inc(rep.drp_transactions);
  if (rep.lock_failed) {
    failed_sequences.inc();
    obs::log::debug(
        "clk", "DRP sequence failed to lock",
        {obs::log::kv("writes", static_cast<double>(rep.drp_transactions)),
         obs::log::kv("dropped", static_cast<double>(rep.dropped_writes)),
         obs::log::kv("corrupted",
                      static_cast<double>(rep.corrupted_writes))});
  } else {
    apply_duration.observe(static_cast<double>(rep.locked - rep.started));
  }
  span.arg("writes", rep.drp_transactions);
  span.arg("dclk_cycles", static_cast<double>(cycles));
  span.arg("sim_duration_us",
           rep.lock_failed ? -1.0 : to_us(rep.locked - rep.started));
  return rep;
}

}  // namespace rftc::clk
