// Fig. 5 reproduction: the four attacks against RFTC(2, P).
//
// Paper shape: with two clock outputs randomized per round, CPA, PCA-CPA
// and FFT-CPA fail for every P; DTW-CPA still breaks the small sets
// (P = 4, P = 16) and fails beyond.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rftc;
  obs::BenchReport report("fig5_m2_attacks");
  const bench::ScaleProfile profile = bench::scale_profile();
  report.note("profile", profile.name);
  report.seed(0x5EED0000);  // rftc_factory campaign seed base
  bench::print_header("Fig. 5 — attacks on RFTC(2, P), profile " +
                      profile.name);
  for (const int p : {4, 16, 64, 256, 1024}) {
    const bench::AttackSuiteResult r =
        bench::run_attack_suite("RFTC(2, " + std::to_string(p) + ")",
                                bench::rftc_factory(2, p), profile);
    bench::record_suite(report, "rftc_2_" + std::to_string(p), r);
  }
  std::printf(
      "\nExpected ordering (paper): only DTW-CPA succeeds, and only for "
      "small P (4, 16).\n");
  bench::finish_capture_bench(report);
  return 0;
}
