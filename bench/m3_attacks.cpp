// §7 text reproduction: RFTC(3, P) resists all four attacks.  The paper
// collected four million traces per configuration and none of CPA,
// PCA-CPA, DTW-CPA or FFT-CPA recovered the key; at our scaled trace axis
// the same "no success at max budget" outcome is expected for every P.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rftc;
  obs::BenchReport report("m3_attacks");
  const bench::ScaleProfile profile = bench::scale_profile();
  report.note("profile", profile.name);
  report.seed(0x5EED0000);  // rftc_factory campaign seed base
  bench::print_header("§7 — attacks on RFTC(3, P) (paper: secure to 4M "
                      "traces), profile " + profile.name);
  for (const int p : {4, 16, 64, 256, 1024}) {
    const bench::AttackSuiteResult r =
        bench::run_attack_suite("RFTC(3, " + std::to_string(p) + ")",
                                bench::rftc_factory(3, p), profile);
    bench::record_suite(report, "rftc_3_" + std::to_string(p), r);
  }
  std::printf("\nExpected (paper): no attack succeeds for any P at M=3.\n");
  bench::finish_capture_bench(report);
  return 0;
}
