// Distributed campaign bench: the rftc::dist coordinator fanning an attack
// and a TVLA sweep out over rftc-worker processes, gated on the one property
// that matters — the merged result is bit-identical to the single-process
// run_attack / run_tvla over the same stores, for every worker count tried.
// Wall-clock speedup is reported as a metric but never gated (it is machine
// shape, not correctness).
//
// The stores (and the round-10 key, recorded as a report note) are kept
// under RFTC_STORE_DIR so the dist-resume CI job can re-drive the same
// corpus through the rftc-campaign CLI, including kill + resume.
//
// Knobs:
//   RFTC_DIST_TRACES   attack store traces (default 8,000; TVLA uses 1/4
//                      of this per population)
//   RFTC_STORE_DIR     where the .rtst stores go (default: temp dir)
//   RFTC_WORKER_BIN    rftc-worker override (default: the build-tree
//                      binary this bench was configured against)
//
// Exit codes: 0 = all distributed runs bit-identical, 1 = divergence or
// campaign failure.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/attacks.hpp"
#include "analysis/tvla.hpp"
#include "common.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "trace/trace_store.hpp"

#ifndef RFTC_DIST_WORKER_BIN_DEFAULT
#define RFTC_DIST_WORKER_BIN_DEFAULT "rftc-worker"
#endif

namespace {

using namespace rftc;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_attack(const analysis::AttackOutcome& a,
                 const analysis::AttackOutcome& b) {
  if (a.checkpoints != b.checkpoints || a.success != b.success) return false;
  if (a.mean_rank.size() != b.mean_rank.size() ||
      a.peak_corr.size() != b.peak_corr.size())
    return false;
  for (std::size_t i = 0; i < a.mean_rank.size(); ++i)
    if (a.mean_rank[i] != b.mean_rank[i] || a.peak_corr[i] != b.peak_corr[i])
      return false;
  return true;
}

bool same_tvla(const analysis::TvlaResult& a, const analysis::TvlaResult& b) {
  if (a.t_values != b.t_values || a.max_abs_t != b.max_abs_t ||
      a.worst_sample != b.worst_sample ||
      a.leaking_samples != b.leaking_samples)
    return false;
  return a.convergence == b.convergence;
}

}  // namespace

int main() {
  obs::BenchReport report("dist_campaign");
  std::size_t n = 8'000;
  if (const char* env = std::getenv("RFTC_DIST_TRACES")) {
    const long v = std::atol(env);
    if (v > 0) n = static_cast<std::size_t>(v);
  }
  std::string dir;
  if (const char* env = std::getenv("RFTC_STORE_DIR")) {
    dir = env;
    std::filesystem::create_directories(dir);
  } else {
    dir = std::filesystem::temp_directory_path().string();
  }
  std::string worker = RFTC_DIST_WORKER_BIN_DEFAULT;
  if (const char* env = std::getenv("RFTC_WORKER_BIN");
      env != nullptr && *env != '\0')
    worker = env;

  const std::uint64_t seed = 31'337;
  report.seed(seed);
  bench::print_header("Distributed campaign, RFTC(3, 1024), " +
                      std::to_string(n) + " attack traces");

  const trace::CaptureShardFactory factory =
      bench::rftc_shard_factory(3, 1024, seed);
  const std::size_t samples = factory(0).sim.samples();
  const aes::Block rk10 = bench::evaluation_round10_key();

  // ---- corpus -----------------------------------------------------------
  const std::string attack_path = dir + "/dist_attack.rtst";
  {
    trace::TraceStoreWriter w(attack_path, samples);
    trace::acquire_random_store(factory, n, seed + 1, w);
    w.finalize();
  }
  const std::size_t n_tvla = std::max<std::size_t>(n / 4, 256);
  const aes::Block tvla_fixed = {0xDA, 0x39, 0xA3, 0xEE, 0x5E, 0x6B,
                                 0x4B, 0x0D, 0x32, 0x55, 0xBF, 0xEF,
                                 0x95, 0x60, 0x18, 0x90};
  const std::string tvla_fixed_path = dir + "/dist_tvla_fixed.rtst";
  const std::string tvla_random_path = dir + "/dist_tvla_random.rtst";
  {
    trace::TraceStoreWriter fw(tvla_fixed_path, samples);
    trace::TraceStoreWriter rw(tvla_random_path, samples);
    trace::acquire_tvla_store(factory, n_tvla, tvla_fixed, seed + 2, fw, rw);
    fw.finalize();
    rw.finalize();
  }
  report.note("attack_store", attack_path);
  report.note("attack_key_hex", dist::key_to_hex(rk10));
  report.note("tvla_fixed_store", tvla_fixed_path);
  report.note("tvla_random_store", tvla_random_path);
  report.metric("attack_traces", static_cast<double>(n), "traces");
  report.metric("tvla_traces_per_population", static_cast<double>(n_tvla),
                "traces");

  // ---- attack: single-process baselines, then distributed ---------------
  dist::CampaignSpec spec;
  spec.kind = dist::CampaignKind::kAttack;
  spec.name = "dist_campaign_attack";
  spec.store = attack_path;
  spec.key_hex = dist::key_to_hex(rk10);
  spec.byte_positions = {0, 7};
  spec.checkpoints = {n / 4, n / 2, n};

  bool all_identical = true;
  double single_seconds = 0.0, workers4_seconds = 0.0;
  for (const auto mode :
       {analysis::CpaMode::kBatched, analysis::CpaMode::kStreaming}) {
    spec.engine_mode = mode;
    const char* mode_name =
        mode == analysis::CpaMode::kBatched ? "batched" : "streaming";
    const trace::TraceStore store(attack_path);
    auto t0 = std::chrono::steady_clock::now();
    const analysis::AttackOutcome baseline =
        analysis::run_attack(store, rk10, spec.attack_params());
    const double base_s = seconds_since(t0);
    if (mode == analysis::CpaMode::kBatched) single_seconds = base_s;
    std::printf("attack/%s single-process: %.2fs\n", mode_name, base_s);

    const std::vector<std::size_t> worker_counts =
        mode == analysis::CpaMode::kBatched
            ? std::vector<std::size_t>{1, 2, 4}
            : std::vector<std::size_t>{2};
    for (const std::size_t workers : worker_counts) {
      const std::string cdir = dir + "/dist_campaign_attack_" + mode_name +
                               "_w" + std::to_string(workers);
      std::filesystem::remove_all(cdir);
      dist::CoordinatorOptions options;
      options.dir = cdir;
      options.worker_binary = worker;
      options.workers = workers;
      t0 = std::chrono::steady_clock::now();
      const dist::CampaignResult result = dist::run_campaign(spec, options);
      const double dist_s = seconds_since(t0);
      if (mode == analysis::CpaMode::kBatched && workers == 4)
        workers4_seconds = dist_s;
      const bool ok = same_attack(result.attack, baseline);
      all_identical = all_identical && ok;
      std::printf("attack/%s workers=%zu: %.2fs, %zu shards — %s\n",
                  mode_name, workers, dist_s, result.shards_total,
                  ok ? "bit-identical" : "DIVERGED");
      report.metric("attack_" + std::string(mode_name) + "_w" +
                        std::to_string(workers) + "_identical",
                    ok ? 1.0 : 0.0, "bool");
    }
  }
  report.metric("attack_single_seconds", single_seconds, "s");
  report.metric("attack_workers4_seconds", workers4_seconds, "s");
  if (workers4_seconds > 0.0)
    report.metric("attack_speedup_w4", single_seconds / workers4_seconds,
                  "x");

  // ---- TVLA -------------------------------------------------------------
  dist::CampaignSpec tvla_spec;
  tvla_spec.kind = dist::CampaignKind::kTvla;
  tvla_spec.name = "dist_campaign_tvla";
  tvla_spec.fixed_store = tvla_fixed_path;
  tvla_spec.random_store = tvla_random_path;
  const trace::StoredTvlaCapture stored{trace::TraceStore(tvla_fixed_path),
                                        trace::TraceStore(tvla_random_path)};
  const analysis::TvlaResult tvla_baseline = analysis::run_tvla(stored);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const std::string cdir =
        dir + "/dist_campaign_tvla_w" + std::to_string(workers);
    std::filesystem::remove_all(cdir);
    dist::CoordinatorOptions options;
    options.dir = cdir;
    options.worker_binary = worker;
    options.workers = workers;
    const dist::CampaignResult result =
        dist::run_campaign(tvla_spec, options);
    const bool ok = same_tvla(result.tvla, tvla_baseline);
    all_identical = all_identical && ok;
    std::printf("tvla workers=%zu: %zu shards — %s\n", workers,
                result.shards_total, ok ? "bit-identical" : "DIVERGED");
    report.metric("tvla_w" + std::to_string(workers) + "_identical",
                  ok ? 1.0 : 0.0, "bool");
  }

  report.throughput(static_cast<double>(n) / report.elapsed_seconds(),
                    "traces/s");
  report.write();
  if (!all_identical) {
    std::fprintf(stderr,
                 "dist_campaign: a distributed run diverged from the "
                 "single-process baseline\n");
    return 1;
  }
  return 0;
}
