// Trace-store kernel microbench: sequential write, mapped sequential read
// and CRC verify bandwidth of the chunked .rtst store (src/trace/
// trace_store.hpp) on a synthetic corpus.  Emits BENCH_trace_store.json for
// the CI bench-regression diff: bandwidths are timing-class (ratio-gated),
// the chunk geometry is count-class (exact).
//
// RFTC_STORE_BENCH_TRACES overrides the corpus size (default 20,000 traces
// of 500 samples — ~40 MiB, large enough to dwarf per-chunk overheads and
// small enough for any CI runner).
//
// Doubling as the heartbeat overhead gate: the bench times a burst of
// forced sampler ticks and reports heartbeat.tick_ms plus
// heartbeat.overhead_pct (tick cost as a percentage of the default 1 s
// interval).  It self-gates at 1% — the ISSUE's budget for live telemetry
// — and CI additionally diffs the metric against the committed baseline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/phase_timer.hpp"
#include "obs/sampler.hpp"
#include "trace/trace_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace rftc;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  obs::BenchReport report("trace_store");
  const std::size_t samples = 500;
  std::size_t n = 20'000;
  if (const char* env = std::getenv("RFTC_STORE_BENCH_TRACES")) {
    const long v = std::atol(env);
    if (v > 0) n = static_cast<std::size_t>(v);
  }
  report.seed(4242);
  bench::print_header("trace_store — chunked store bandwidth, " +
                      std::to_string(n) + " traces x " +
                      std::to_string(samples) + " samples");

  const std::string path =
      (std::filesystem::temp_directory_path() / "rftc_bench_store.rtst")
          .string();
  std::filesystem::remove(path);

  // Synthetic corpus: RNG floats, not simulated traces — this bench times
  // the store, not the device model.
  Xoshiro256StarStar rng(4242);
  std::vector<float> tr(samples);
  aes::Block pt{}, ct{};

  auto t0 = std::chrono::steady_clock::now();
  {
    obs::PhaseScope io(obs::kPhaseStoreIo);
    trace::TraceStoreWriter writer(path, samples);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : tr) v = static_cast<float>(rng.uniform01());
      pt[0] = static_cast<std::uint8_t>(i);
      writer.add(tr, pt, ct);
    }
    writer.finalize();
  }
  const double write_s = seconds_since(t0);

  trace::TraceStore store(path);
  const double mib =
      static_cast<double>(store.file_bytes()) / (1024.0 * 1024.0);

  // Mapped sequential read: touch every float through the chunk windows.
  t0 = std::chrono::steady_clock::now();
  double checksum = 0.0;
  {
  obs::PhaseScope io(obs::kPhaseStoreIo);
  for (std::size_t c = 0; c < store.chunk_count(); ++c) {
    const trace::TraceChunk chunk = store.chunk(c);
    for (std::size_t k = 0; k < chunk.count(); ++k)
      for (const float v : chunk.trace(k)) checksum += v;
  }
  }
  const double read_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  trace::StoreVerifyResult v;
  {
    obs::PhaseScope io(obs::kPhaseStoreIo);
    v = store.verify();
  }
  const double verify_s = seconds_since(t0);

  std::printf("corpus    %8.1f MiB (%zu chunks of %zu traces)\n", mib,
              store.chunk_count(), store.chunk_traces());
  std::printf("write     %8.1f MiB/s\n", mib / write_s);
  std::printf("read      %8.1f MiB/s (checksum %.3e)\n", mib / read_s,
              checksum);
  std::printf("verify    %8.1f MiB/s (%s)\n", mib / verify_s,
              v.ok ? "OK" : v.error.c_str());

  report.metric("corpus_mib", mib, "MiB");
  report.metric("chunks", static_cast<double>(store.chunk_count()), "count");
  report.metric("write_bw", mib / write_s, "MiB/s");
  report.metric("read_bw", mib / read_s, "MiB/s");
  report.metric("verify_bw", mib / verify_s, "MiB/s");
  report.metric("verify_ok", v.ok ? 1.0 : 0.0, "count");
  report.throughput(static_cast<double>(n) / write_s, "traces/s");

  // Heartbeat overhead: force a burst of ticks and price one tick against
  // the default sampling interval.  Uses the already-armed sampler when
  // RFTC_OBS_HEARTBEAT is set, otherwise a scratch sink that is removed
  // after the measurement.
  obs::HeartbeatSampler& sampler = obs::HeartbeatSampler::global();
  std::string scratch_hb;
  if (!sampler.configured()) {
    scratch_hb = (std::filesystem::temp_directory_path() /
                  "rftc_bench_store_heartbeat.jsonl")
                     .string();
    std::filesystem::remove(scratch_hb);
    sampler.configure(scratch_hb);
  }
  constexpr int kTicks = 20;
  t0 = std::chrono::steady_clock::now();
  int ticked = 0;
  for (int i = 0; i < kTicks; ++i)
    if (sampler.tick_now()) ++ticked;
  const double tick_ms =
      ticked > 0 ? seconds_since(t0) * 1e3 / ticked : 0.0;
  const double interval_ms = static_cast<double>(
      std::chrono::milliseconds(obs::HeartbeatSampler::kDefaultInterval)
          .count());
  const double overhead_pct = 100.0 * tick_ms / interval_ms;
  std::printf("heartbeat %8.3f ms/tick (%.3f%% of the %.0f ms interval)\n",
              tick_ms, overhead_pct, interval_ms);
  report.metric("heartbeat.tick_ms", tick_ms, "ms");
  report.metric("heartbeat.overhead_pct", overhead_pct, "%");
  const bool hb_ok = ticked == kTicks && overhead_pct <= 1.0;
  if (!hb_ok)
    std::fprintf(stderr,
                 "trace_store: heartbeat overhead gate FAILED "
                 "(%d/%d ticks, %.3f%% > 1%%)\n",
                 ticked, kTicks, overhead_pct);
  if (!scratch_hb.empty()) std::filesystem::remove(scratch_hb);

  report.write();
  std::filesystem::remove(path);
  return v.ok && hb_ok ? 0 : 1;
}
