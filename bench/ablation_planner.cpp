// Ablation bench for the design choices DESIGN.md calls out:
//  1. Overlap-free vs naive frequency selection — how many completion-time
//     collisions each produces (the mechanism behind Fig. 3-b vs 3-c).
//  2. Collision-check resolution — the paper checks *exact* duplicates; an
//     adversary's effective timing resolution is the scope sample period,
//     so we quantify residual collisions when the plan is quantized to
//     coarser grids.
//  3. BUFG switch overhead — the paper's completion-time arithmetic assumes
//     ideal period sums; modelling the glitch-free mux dead time perturbs
//     the distribution, measured here.
#include <cstdio>
#include <unordered_set>

#include "common.hpp"
#include "rftc/controller.hpp"
#include "util/histogram.hpp"

namespace {

using namespace rftc;

core::FrequencyPlan make_plan(bool avoid_overlaps, int p,
                              std::uint64_t seed) {
  core::PlannerParams pp;
  pp.m_outputs = 3;
  pp.p_configs = p;
  pp.avoid_overlaps = avoid_overlaps;
  pp.seed = seed;
  return core::plan_frequencies(pp);
}

std::size_t plan_collisions(const core::FrequencyPlan& plan,
                            std::int64_t resolution_fs) {
  ExactHistogram h;
  for (const auto& periods : plan.periods_fs)
    for (const std::int64_t t :
         core::enumerate_completion_times(periods, plan.params.rounds))
      h.add(t / resolution_fs);
  return static_cast<std::size_t>(h.colliding_items());
}

}  // namespace

int main() {
  obs::BenchReport report("ablation_planner");
  const bench::ScaleProfile profile = bench::scale_profile();
  const int p = profile.name == "full" ? 512 : 128;
  report.note("profile", profile.name);
  report.seed(0x5EED0000);  // campaign seed base
  report.metric("p_configs", p);
  bench::print_header("Ablation — planner and clocking design choices (P=" +
                      std::to_string(p) + ")");

  const core::FrequencyPlan careful = make_plan(true, p, 11);
  const core::FrequencyPlan naive = make_plan(false, p, 11);

  std::printf("\n[1] Overlap-free search (theoretical completion times)\n");
  std::printf("    %-28s %12s %12s\n", "", "careful", "naive");
  std::printf("    %-28s %12llu %12llu\n", "total completion times",
              static_cast<unsigned long long>(careful.total_completion_times()),
              static_cast<unsigned long long>(naive.total_completion_times()));
  std::printf("    %-28s %12zu %12zu\n", "colliding entries (1 fs)",
              plan_collisions(careful, 1), plan_collisions(naive, 1));
  std::printf("    %-28s %12llu %12llu\n", "candidate sets rejected",
              static_cast<unsigned long long>(careful.rejected_sets),
              static_cast<unsigned long long>(naive.rejected_sets));
  report.metric("careful.colliding_entries",
                static_cast<double>(plan_collisions(careful, 1)));
  report.metric("naive.colliding_entries",
                static_cast<double>(plan_collisions(naive, 1)));
  report.metric("careful.rejected_sets",
                static_cast<double>(careful.rejected_sets));

  std::printf("\n[2] Residual collisions vs adversary timing resolution\n");
  for (const std::int64_t res_fs :
       {std::int64_t{1}, std::int64_t{1'000}, std::int64_t{100'000},
        std::int64_t{1'000'000}, std::int64_t{2'000'000},
        std::int64_t{10'000'000}}) {
    std::printf("    resolution %9.3f ps: careful %6zu, naive %6zu "
                "colliding entries\n",
                static_cast<double>(res_fs) / 1e3,
                plan_collisions(careful, res_fs),
                plan_collisions(naive, res_fs));
  }
  std::printf(
      "    -> exact-duplicate avoidance also thins out coarse-grid "
      "collisions, but cannot eliminate them below the scope resolution.\n");

  std::printf("\n[3] BUFG glitch-free switch overhead\n");
  std::size_t total_encryptions = 0;
  for (const bool overhead : {false, true}) {
    core::ControllerParams cp;
    cp.model_switch_overhead = overhead;
    core::RftcController ctrl(careful, cp);
    ExactHistogram h;
    double mean = 0;
    const std::size_t n = 100'000;
    for (std::size_t i = 0; i < n; ++i) {
      const Picoseconds c = ctrl.next(10).completion_ps();
      h.add(c);
      mean += static_cast<double>(c);
    }
    std::printf("    switch overhead %-5s: mean completion %8.2f ns, "
                "distinct %6zu, max identical %llu\n",
                overhead ? "ON" : "OFF", mean / static_cast<double>(n) / 1e3,
                h.distinct(),
                static_cast<unsigned long long>(h.max_multiplicity()));
    total_encryptions += n;
    report.metric(std::string("switch_overhead_") + (overhead ? "on" : "off") +
                      ".mean_completion_ns",
                  mean / static_cast<double>(n) / 1e3, "ns");
    report.metric(std::string("switch_overhead_") + (overhead ? "on" : "off") +
                      ".distinct_completions",
                  static_cast<double>(h.distinct()));
  }
  std::printf(
      "    -> the idealized (paper) arithmetic is the OFF row; the ON row "
      "shows the dead time stretches completions and reshuffles the "
      "distribution without collapsing its diversity.\n");
  report.throughput(
      static_cast<double>(total_encryptions) / report.elapsed_seconds(),
      "encryptions/s");
  report.write();
  return 0;
}
