// CPA engine speedup: the fig4-style CPA attack (last-round HD, checkpoint
// schedule of the scale profile) timed with the streaming reference engine
// on one thread versus the batched class-sum/WHT engine with the configured
// RFTC_THREADS.  Both runs attack the SAME captured campaign, and because
// raw ADC traces are exactly quantized the two engines must agree
// bit-for-bit on every checkpoint — the bench fails (exit 1) if they don't.
//
// BENCH_fig4_cpa_speedup.json records serial_seconds, batched_seconds and
// speedup_vs_serial (the acceptance gate: >= 4x).
//
// Out-of-core mode: with RFTC_STORE_DIR set, the same campaign is also
// streamed into a chunked .rtst store and attacked through the store-backed
// run_attack overload — the outcome must match the in-RAM batched run
// bit-for-bit (exit 1 otherwise), pinning the streamed fig. 4 path at bench
// scale.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common.hpp"
#include "simd/simd.hpp"
#include "trace/trace_store.hpp"
#include "util/parallel.hpp"

namespace {

double time_attack(const rftc::trace::TraceSet& set,
                   const rftc::aes::Block& rk10,
                   const rftc::analysis::AttackParams& params,
                   rftc::analysis::AttackOutcome& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = rftc::analysis::run_attack(set, rk10, params);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_outcome(const rftc::analysis::AttackOutcome& a,
                  const rftc::analysis::AttackOutcome& b) {
  return a.checkpoints == b.checkpoints && a.success == b.success &&
         a.mean_rank == b.mean_rank && a.peak_corr == b.peak_corr;
}

}  // namespace

int main() {
  using namespace rftc;
  obs::BenchReport report("fig4_cpa_speedup");
  const bench::ScaleProfile profile = bench::scale_profile();
  report.note("profile", profile.name);
  report.note("simd_isa", simd::backend_name());
  report.seed(0x5EED0000);  // rftc_factory campaign seed base
  bench::print_header("CPA engine speedup — streaming (1 thread) vs batched "
                      "(RFTC_THREADS), profile " +
                      profile.name);

  // One campaign, reused by both engines.  RFTC(1, 4) is the weakest
  // fig. 4 configuration, so the checkpoint ranks are also a meaningful
  // cross-check, but the timing is representative of any P.
  const trace::TraceSet set =
      bench::rftc_factory(1, 4)(/*repeat=*/0, profile.sr_max_traces);
  std::printf("campaign: %zu traces x %zu samples\n", set.size(),
              set.samples());

  analysis::AttackParams params;
  params.kind = analysis::AttackKind::kCpa;
  params.byte_positions = profile.attack_bytes;
  params.checkpoints = profile.sr_checkpoints;
  const aes::Block rk10 = bench::evaluation_round10_key();

  // Serial baseline: the streaming engine on a single thread.
  const std::size_t configured_threads = par::thread_count();
  par::set_thread_count(1);
  params.engine_mode = analysis::CpaMode::kStreaming;
  analysis::AttackOutcome serial_out;
  const double serial_s = time_attack(set, rk10, params, serial_out);
  std::printf("streaming, 1 thread:      %8.2f s\n", serial_s);

  // Batched engine with the configured thread count.
  par::set_thread_count(configured_threads);
  params.engine_mode = analysis::CpaMode::kBatched;
  analysis::AttackOutcome batched_out;
  const double batched_s = time_attack(set, rk10, params, batched_out);
  std::printf("batched, %zu thread(s):    %8.2f s\n", configured_threads,
              batched_s);

  const bool match = same_outcome(serial_out, batched_out);
  const double speedup = batched_s > 0.0 ? serial_s / batched_s : 0.0;
  std::printf("speedup_vs_serial:        %8.2fx   outcomes %s\n", speedup,
              match ? "bit-identical" : "MISMATCH");

  // Out-of-core cross-check: re-acquire the identical campaign into a
  // chunked store (same shard factory, same seed) and attack it through
  // the streamed path with the batched engine still configured.
  bool ooc_match = true;
  if (const char* env = std::getenv("RFTC_STORE_DIR")) {
    std::filesystem::create_directories(env);
    const std::string path = std::string(env) + "/fig4_cpa_campaign.rtst";
    const std::uint64_t mix = bench::rftc_campaign_mix(1, 4, /*repeat=*/0);
    {
      trace::TraceStoreWriter writer(path, set.samples());
      trace::acquire_random_store(bench::rftc_shard_factory(1, 4, mix),
                                  set.size(), mix + 0xB0B0B0B0ULL, writer);
      writer.finalize();
    }
    const trace::TraceStore store(path);
    analysis::AttackOutcome ooc_out;
    const auto t0 = std::chrono::steady_clock::now();
    ooc_out = analysis::run_attack(store, rk10, params);
    const double ooc_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ooc_match = same_outcome(batched_out, ooc_out);
    std::printf("out-of-core, %zu chunks:  %8.2f s   outcomes %s\n",
                store.chunk_count(), ooc_s,
                ooc_match ? "bit-identical" : "MISMATCH");
    report.note("store", path);
    report.metric("ooc_seconds", ooc_s, "s");
    report.metric("ooc_outcomes_match", ooc_match ? 1.0 : 0.0, "bool");
  }

  report.metric("traces", static_cast<double>(set.size()), "traces");
  report.metric("serial_seconds", serial_s, "s");
  report.metric("batched_seconds", batched_s, "s");
  report.metric("speedup_vs_serial", speedup, "x");
  report.metric("outcomes_match", match ? 1.0 : 0.0, "bool");
  report.throughput(static_cast<double>(set.size()) / batched_s, "traces/s");
  report.write();
  if (!match) {
    std::fprintf(stderr,
                 "fig4_cpa_speedup: batched engine diverged from the "
                 "streaming reference\n");
    return 1;
  }
  if (!ooc_match) {
    std::fprintf(stderr,
                 "fig4_cpa_speedup: out-of-core attack diverged from the "
                 "in-RAM batched run\n");
    return 1;
  }
  return 0;
}
