// Fault campaign: sweeps DRP-family fault rates x timing margins over RFTC
// devices (docs/ROBUSTNESS.md) and reports faulty-ciphertext rate, recovery
// latency, and the schedule-entropy cost of the fallback policy.  Gated in
// CI against ci/baselines/fault_campaign.jsonl via `rftc-report diff` —
// every count column is a seeded deterministic tally (unit "count", exact
// match required).
#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common.hpp"
#include "fault/campaign.hpp"

using namespace rftc;

int main() {
  bench::print_header("Fault campaign: DRP fault rate x timing margin");

  obs::BenchReport report("fault_campaign");
  fault::CampaignParams params;
  params.seed = 20260806;
  params.encryptions_per_cell = 400;
  report.seed(params.seed);

  const fault::CampaignResult result =
      fault::run_fault_campaign(params, &report.manifest());

  std::printf(
      "  %8s %9s %7s %8s %8s %6s %5s %9s %8s %7s\n", "drp_rate", "margin_ps",
      "faulty", "injected", "lockfail", "retry", "fback", "recov_us",
      "entropy", "locked");
  bench::print_rule();
  bool invariant_violated = false;
  bool zero_cell_faulty = false;
  for (const fault::CellResult& c : result.cells) {
    std::printf("  %8.3f %9lld %7zu %8llu %8llu %6llu %5llu %9.2f %8.3f %7s\n",
                c.drp_rate, static_cast<long long>(c.margin_ps),
                c.faulty_ciphertexts,
                static_cast<unsigned long long>(c.injected_faults),
                static_cast<unsigned long long>(c.lock_failures),
                static_cast<unsigned long long>(c.recovery_retries),
                static_cast<unsigned long long>(c.fallbacks),
                c.mean_recovery_latency_us, c.completion_entropy_bits,
                c.clock_always_locked ? "yes" : "NO");
    if (!c.clock_always_locked) invariant_violated = true;
    // The zero-rate / max-margin corner must be fault-free: its spec arms
    // nothing beyond the timing model, which the largest margin disarms in
    // practice for this plan.
    if (c.drp_rate == 0.0 && c.injected_faults == 0 &&
        c.faulty_ciphertexts > 0)
      zero_cell_faulty = true;
  }
  bench::print_rule();
  std::printf("  baseline (fault-free): entropy %.3f bits, %zu classes\n",
              result.baseline_entropy_bits, result.baseline_classes);

  // Aggregates for the CI gate.  Event tallies are exact-match "count"
  // metrics; entropies are value-class.
  std::uint64_t faulty = 0, injected = 0, lock_failures = 0, retries = 0,
                fallbacks = 0, reconfigs = 0;
  double min_entropy = result.baseline_entropy_bits;
  for (const fault::CellResult& c : result.cells) {
    faulty += c.faulty_ciphertexts;
    injected += c.injected_faults;
    lock_failures += c.lock_failures;
    retries += c.recovery_retries;
    fallbacks += c.fallbacks;
    reconfigs += c.reconfigurations;
    if (c.completion_entropy_bits < min_entropy)
      min_entropy = c.completion_entropy_bits;
  }
  report.metric("cells", static_cast<double>(result.cells.size()), "count");
  report.metric("faulty_ciphertexts", static_cast<double>(faulty), "count");
  report.metric("injected_faults", static_cast<double>(injected), "count");
  report.metric("lock_failures", static_cast<double>(lock_failures), "count");
  report.metric("recovery_retries", static_cast<double>(retries), "count");
  report.metric("fallbacks", static_cast<double>(fallbacks), "count");
  report.metric("reconfigurations", static_cast<double>(reconfigs), "count");
  report.metric("baseline_entropy_bits", result.baseline_entropy_bits,
                "bits");
  report.metric("min_cell_entropy_bits", min_entropy, "bits");
  report.metric("clock_always_locked", invariant_violated ? 0.0 : 1.0,
                "count");
  const double total_enc = static_cast<double>(result.cells.size()) *
                           static_cast<double>(params.encryptions_per_cell);
  report.throughput(total_enc / std::max(report.elapsed_seconds(), 1e-9),
                    "encryptions/s");
  const std::string path = report.write();
  if (!path.empty()) std::printf("  report: %s\n", path.c_str());

  if (invariant_violated) {
    std::fprintf(stderr,
                 "FAIL: an encryption ran while the active MMCM was "
                 "unlocked\n");
    return 1;
  }
  if (zero_cell_faulty) {
    std::fprintf(stderr,
                 "FAIL: zero-rate cell produced faulty ciphertexts with no "
                 "injected faults\n");
    return 1;
  }
  return 0;
}
