// Long-haul soak campaign: a multi-segment attack + TVLA run under fault
// injection, with the whole observability stack armed (heartbeat sampler +
// crash-safe post-mortem) and two hard gates at the end:
//
//  1. Accumulator-merge bit-identity.  Each segment streams its own .rtst
//     stores through fresh per-segment CPA / Welch-t accumulators which are
//     then merge()d into campaign accumulators; single-pass accumulators fed
//     the identical trace stream run alongside.  Any divergence between the
//     merged and single-pass results — the contract the distributed
//     campaign engine builds on (docs/TESTING.md) — fails the bench.
//
//  2. Bounded peak RSS.  Segments hold O(chunk) of the corpus and their
//     stores are deleted once folded in, so however long the soak runs the
//     kernel-reported peak RSS must stay under RFTC_SOAK_RSS_MIB.
//
// The controller runs with the DRP/MMCM fault families armed, so the whole
// campaign exercises the recovery paths continuously; the recovery tallies
// are reported as metrics.  CI-sized by default; the nightly job turns the
// knobs up.
//
// Knobs:
//   RFTC_SOAK_SEGMENTS    campaign segments (default 3)
//   RFTC_SOAK_TRACES      traces per population per segment (default 4000)
//   RFTC_SOAK_RSS_MIB     peak-RSS gate in MiB (default 512)
//   RFTC_SOAK_FAULT_RATE  per-family DRP/lock fault rate (default 0.02)
//   RFTC_STORE_DIR        where segment stores go (default: temp dir)
//
// Exit codes: 0 = completed with all gates green; 1 = store corruption,
// merge divergence, or the RSS gate failed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/cpa.hpp"
#include "common.hpp"
#include "fault/fault_spec.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"
#include "obs/sampler.hpp"
#include "rftc/frequency_planner.hpp"
#include "trace/trace_store.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"

namespace {

using namespace rftc;

/// rftc_shard_factory with the DRP/MMCM fault families armed: same pure
/// per-shard seeding contract, plus a per-shard-salted fault stream so
/// shards draw independent fault sequences.
trace::CaptureShardFactory faulted_shard_factory(int m, int p,
                                                 std::uint64_t mix,
                                                 double fault_rate) {
  const aes::Key key = bench::evaluation_key();
  core::PlannerParams pp;
  pp.m_outputs = m;
  pp.p_configs = p;
  pp.seed = 41;
  // Planning is deterministic and expensive: do it once, share the plan.
  auto plan = std::make_shared<core::FrequencyPlan>(core::plan_frequencies(pp));
  return [key, plan, mix, fault_rate](std::size_t shard) {
    const std::uint64_t salt =
        SplitMix64(mix ^ (0x9E3779B97F4A7C15ULL * (shard + 1))).next();
    core::ControllerParams params;
    params.lfsr_seed_lo = salt | 1;
    params.lfsr_seed_hi = SplitMix64(salt).next();
    params.faults.drp_corrupt_rate = fault_rate;
    params.faults.drp_drop_rate = fault_rate;
    params.faults.lock_loss_rate = fault_rate;
    params.faults.seed = salt ^ 0xF4017ULL;
    auto dev = std::make_shared<core::RftcDevice>(key, *plan, params);
    trace::PowerModelParams pm;
    return trace::CaptureShard{
        [dev](const aes::Block& pt) { return dev->encrypt(pt); },
        trace::TraceSimulator(pm, salt ^ 0xA5A5A5A5ULL)};
  };
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool reports_equal(const std::vector<analysis::CpaEngine::ByteReport>& a,
                   const std::vector<analysis::CpaEngine::ByteReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].byte_pos != b[i].byte_pos ||
        std::memcmp(a[i].peak_abs_corr.data(), b[i].peak_abs_corr.data(),
                    sizeof(a[i].peak_abs_corr)) != 0)
      return false;
  return true;
}

}  // namespace

int main() {
  // Arm the full observability stack unless the caller configured it
  // already: the soak exists to prove long runs stay observable and leave a
  // usable post-mortem if they die.
  ::setenv("RFTC_OBS_HEARTBEAT", "soak_heartbeat.jsonl:250", 0);
  ::setenv("RFTC_OBS_POSTMORTEM", "soak_postmortem.json", 0);
  obs::init_from_env();

  const std::size_t segments = env::read_count("RFTC_SOAK_SEGMENTS", 3);
  const std::size_t n = env::read_count("RFTC_SOAK_TRACES", 4000);
  const double rss_gate_mib =
      env::read_real("RFTC_SOAK_RSS_MIB", 512.0);
  const double fault_rate = env::read_real("RFTC_SOAK_FAULT_RATE", 0.02);
  std::string dir;
  if (const char* env_dir = std::getenv("RFTC_STORE_DIR")) {
    dir = env_dir;
    std::filesystem::create_directories(dir);
  } else {
    dir = std::filesystem::temp_directory_path().string();
  }

  const std::uint64_t seed = 0x50AC'CA4D;
  obs::BenchReport report("soak_campaign");
  report.seed(seed);
  bench::print_header("Soak campaign: " + std::to_string(segments) +
                      " segments x " + std::to_string(n) +
                      " traces/population, RFTC(3, 16), faults armed");
  obs::set_campaign_total(static_cast<double>(2 * segments * n));

  const aes::Block tvla_fixed = {0xDA, 0x39, 0xA3, 0xEE, 0x5E, 0x6B,
                                 0x4B, 0x0D, 0x32, 0x55, 0xBF, 0xEF,
                                 0x95, 0x60, 0x18, 0x90};
  const std::vector<int> attack_bytes = {0, 5, 11};

  // Probe the trace geometry once (shard factories are pure, so this is
  // exactly what every segment's shard 0 will produce).
  const std::size_t samples =
      faulted_shard_factory(3, 16, seed, fault_rate)(0).sim.samples();

  // Campaign accumulators built by merge() vs single-pass twins fed the
  // same stream trace-for-trace.
  WelchTTest welch_merged(samples), welch_single(samples);
  analysis::CpaEngine cpa_merged(samples, attack_bytes);
  analysis::CpaEngine cpa_single(samples, attack_bytes);

  std::size_t traces_total = 0;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const std::string fixed_path =
        dir + "/soak_seg" + std::to_string(seg) + "_fixed.rtst";
    const std::string random_path =
        dir + "/soak_seg" + std::to_string(seg) + "_random.rtst";
    {
      trace::TraceStoreWriter fixed_w(fixed_path, samples);
      trace::TraceStoreWriter random_w(random_path, samples);
      trace::acquire_tvla_store(
          faulted_shard_factory(3, 16, seed + 101 * seg, fault_rate), n,
          tvla_fixed, seed + 7 * seg + 1, fixed_w, random_w);
      fixed_w.finalize();
      random_w.finalize();
    }

    trace::TraceStore fixed(fixed_path), random(random_path);
    for (const trace::TraceStore* s : {&fixed, &random}) {
      const trace::StoreVerifyResult v = s->verify();
      if (!v.ok) {
        std::fprintf(stderr, "soak_campaign: %s: %s\n", s->path().c_str(),
                     v.error.c_str());
        return 1;
      }
    }

    // Fresh per-segment accumulators, folded into the campaign ones after
    // the segment's stores stream through.
    WelchTTest welch_seg(samples);
    analysis::CpaEngine cpa_seg(samples, attack_bytes);
    for (std::size_t c = 0; c < fixed.chunk_count(); ++c) {
      const trace::TraceChunk chunk = fixed.chunk(c);
      for (std::size_t t = 0; t < chunk.count(); ++t) {
        welch_seg.add_fixed_range(chunk.trace(t), 0, samples);
        welch_single.add_fixed_range(chunk.trace(t), 0, samples);
      }
    }
    for (std::size_t c = 0; c < random.chunk_count(); ++c) {
      const trace::TraceChunk chunk = random.chunk(c);
      for (std::size_t t = 0; t < chunk.count(); ++t) {
        welch_seg.add_random_range(chunk.trace(t), 0, samples);
        welch_single.add_random_range(chunk.trace(t), 0, samples);
        cpa_seg.add(chunk.ciphertext(t), chunk.trace(t));
        cpa_single.add(chunk.ciphertext(t), chunk.trace(t));
      }
    }
    welch_merged.merge(welch_seg);
    cpa_merged.merge(cpa_seg);
    traces_total += 2 * n;

    report.checkpoint("soak", static_cast<double>(traces_total),
                      {{"max_abs_t", welch_merged.max_abs_t()},
                       {"segment", static_cast<double>(seg)}});
    std::printf("  segment %zu/%zu: %zu traces folded, max |t| %.2f\n",
                seg + 1, segments, traces_total, welch_merged.max_abs_t());

    // Bound the disk footprint: a segment's stores are dead weight once
    // folded into the campaign accumulators.
    std::filesystem::remove(fixed_path);
    std::filesystem::remove(random_path);
  }

  // Gate 1: merged == single-pass, bit for bit.
  const bool welch_ok =
      bitwise_equal(welch_merged.t_values(), welch_single.t_values()) &&
      welch_merged.fixed_count() == welch_single.fixed_count() &&
      welch_merged.random_count() == welch_single.random_count();
  const bool cpa_ok = cpa_merged.count() == cpa_single.count() &&
                      reports_equal(cpa_merged.report(), cpa_single.report());
  report.metric("welch_merge_bit_identical", welch_ok ? 1.0 : 0.0, "bool");
  report.metric("cpa_merge_bit_identical", cpa_ok ? 1.0 : 0.0, "bool");

  const analysis::CpaEngine::KeyScore score =
      cpa_merged.score(bench::evaluation_round10_key());
  const double max_abs_t = welch_merged.max_abs_t();
  std::printf("  final: max |t| %.2f, CPA mean rank %.1f over %zu traces\n",
              max_abs_t, score.mean_rank, cpa_merged.count());
  report.metric("segments", static_cast<double>(segments), "count");
  report.metric("traces_total", static_cast<double>(traces_total), "count");
  report.metric("max_abs_t", max_abs_t, "|t|");
  report.metric("cpa_mean_rank", score.mean_rank, "rank");

  // Recovery-path exercise: the soak is only a soak if faults actually
  // fired and the controller recovered continuously.
  const auto& reg = obs::Registry::global();
  (void)reg;
  const double lock_failures = static_cast<double>(
      obs::Registry::global().counter("rftc.recovery.lock_failures").value());
  const double retries = static_cast<double>(
      obs::Registry::global().counter("rftc.recovery.retries").value());
  const double fallbacks = static_cast<double>(
      obs::Registry::global().counter("rftc.recovery.fallbacks").value());
  report.metric("fault_lock_failures", lock_failures, "count");
  report.metric("fault_recovery_retries", retries, "count");
  report.metric("fault_recovery_fallbacks", fallbacks, "count");
  std::printf("  recovery: %.0f lock failures, %.0f retries, %.0f fallbacks\n",
              lock_failures, retries, fallbacks);

  // Gate 2: bounded memory over the whole soak.
  const double peak_mib = obs::peak_rss_mib();
  report.metric("peak_rss_mib", peak_mib, "MiB");
  report.metric("rss_gate_mib", rss_gate_mib, "MiB");
  std::printf("  peak RSS %.1f MiB (gate %.0f MiB)\n", peak_mib,
              rss_gate_mib);

  report.throughput(static_cast<double>(traces_total) /
                        report.elapsed_seconds(),
                    "traces/s");
  report.write();
  obs::flush();

  if (!welch_ok || !cpa_ok) {
    std::fprintf(stderr,
                 "soak_campaign: merged accumulators diverged from the "
                 "single-pass reference (welch %s, cpa %s)\n",
                 welch_ok ? "ok" : "DIVERGED", cpa_ok ? "ok" : "DIVERGED");
    return 1;
  }
  if (peak_mib > rss_gate_mib) {
    std::fprintf(stderr,
                 "soak_campaign: peak RSS %.1f MiB exceeds the %.0f MiB "
                 "gate\n",
                 peak_mib, rss_gate_mib);
    return 1;
  }
  return 0;
}
