// Shared infrastructure for the reproduction benches: the evaluation key,
// campaign factories, scale profiles and table formatting.
//
// Scale: the paper's campaigns run to 1M-4M traces on real hardware.  These
// benches default to a "fast" profile whose trace axis is ~100x smaller,
// with the oscilloscope noise calibrated so the unprotected baseline breaks
// at a proportionally smaller trace count (see EXPERIMENTS.md).  Set
// RFTC_SCALE=full for a longer run (~10x the fast profile).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aes/aes128.hpp"
#include "analysis/attacks.hpp"
#include "analysis/success_rate.hpp"
#include "rftc/device.hpp"
#include "trace/acquisition.hpp"

namespace rftc::bench {

/// The key under attack in every experiment.
aes::Key evaluation_key();
aes::Block evaluation_round10_key();

struct ScaleProfile {
  std::string name;
  /// Max traces per success-rate campaign.
  std::size_t sr_max_traces;
  /// Checkpoints for success-rate curves.
  std::vector<std::size_t> sr_checkpoints;
  /// Attack repetitions per point (paper: 100).
  unsigned sr_repeats;
  /// TVLA traces per population (paper: 1M total).
  std::size_t tvla_traces;
  /// Completion-time histogram encryptions (paper: 1M).
  std::size_t histogram_encryptions;
  /// Key-byte positions attacked (paper: full key; fast profile uses a
  /// representative subset to fit a single-core budget).
  std::vector<int> attack_bytes;
};

/// Reads RFTC_SCALE (fast | full) from the environment; defaults to fast.
ScaleProfile scale_profile();

/// Campaign factory for an RFTC(m, p) device (fresh device per repeat so
/// countermeasure randomness is independent).
analysis::CampaignFactory rftc_factory(int m, int p);
/// Campaign factory for the unprotected fixed-clock reference.
analysis::CampaignFactory unprotected_factory();

/// Runs the four attacks of the paper against one campaign factory and
/// prints the success-rate series (one row per checkpoint).
void run_attack_suite(const std::string& label,
                      const analysis::CampaignFactory& factory,
                      const ScaleProfile& profile);

/// Markdown-ish table row helpers.
void print_rule(std::size_t width = 78);
void print_header(const std::string& title);

}  // namespace rftc::bench
