// Shared infrastructure for the reproduction benches: the evaluation key,
// campaign factories, scale profiles and table formatting.
//
// Scale: the paper's campaigns run to 1M-4M traces on real hardware.  These
// benches default to a "fast" profile whose trace axis is ~100x smaller,
// with the oscilloscope noise calibrated so the unprotected baseline breaks
// at a proportionally smaller trace count (see EXPERIMENTS.md).  Set
// RFTC_SCALE=full for a longer run (~10x the fast profile).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "aes/aes128.hpp"
#include "analysis/attacks.hpp"
#include "analysis/success_rate.hpp"
#include "obs/bench_report.hpp"
#include "rftc/device.hpp"
#include "trace/acquisition.hpp"

namespace rftc::bench {

/// The key under attack in every experiment.
aes::Key evaluation_key();
aes::Block evaluation_round10_key();

struct ScaleProfile {
  std::string name;
  /// Max traces per success-rate campaign.
  std::size_t sr_max_traces;
  /// Checkpoints for success-rate curves.
  std::vector<std::size_t> sr_checkpoints;
  /// Attack repetitions per point (paper: 100).
  unsigned sr_repeats;
  /// TVLA traces per population (paper: 1M total).
  std::size_t tvla_traces;
  /// Completion-time histogram encryptions (paper: 1M).
  std::size_t histogram_encryptions;
  /// Key-byte positions attacked (paper: full key; fast profile uses a
  /// representative subset to fit a single-core budget).
  std::vector<int> attack_bytes;
};

/// Reads RFTC_SCALE (fast | full) from the environment; defaults to fast.
ScaleProfile scale_profile();

/// Campaign factory for an RFTC(m, p) device (fresh device per repeat so
/// countermeasure randomness is independent).  Captures run through
/// trace::acquire_random_parallel with pure per-shard seeding, so campaigns
/// are bit-identical under any RFTC_THREADS.
analysis::CampaignFactory rftc_factory(int m, int p);
/// Campaign factory for the unprotected fixed-clock reference (same
/// parallel-capture determinism contract as rftc_factory).
analysis::CampaignFactory unprotected_factory();

/// The pure capture-shard factory underneath rftc_factory: shard j's device
/// and simulator seeds depend only on (mix, j).  Exposed so the out-of-core
/// benches can stream the same campaigns into a trace store
/// (trace::acquire_random_store / acquire_tvla_store) that the in-RAM
/// campaigns capture — same factory + same seed = byte-identical traces.
trace::CaptureShardFactory rftc_shard_factory(int m, int p,
                                              std::uint64_t mix);
/// Unprotected counterpart of rftc_shard_factory.
trace::CaptureShardFactory unprotected_shard_factory(std::uint64_t mix);

/// The campaign mix rftc_factory derives for repetition `repeat` of an
/// RFTC(m, p) suite.  `acquire_random_store(rftc_shard_factory(m, p, mix),
/// n, mix + 0xB0B0B0B0)` therefore writes a store byte-identical to the
/// TraceSet `rftc_factory(m, p)(repeat, n)` returns.
std::uint64_t rftc_campaign_mix(int m, int p, std::uint64_t repeat);

/// Outcome of one four-attack suite, for machine-readable reporting.
struct AttackSuiteResult {
  /// CPA, PCA-CPA, DTW-CPA, FFT-CPA (in that order).
  std::array<std::string, 4> attack_names;
  /// Smallest checkpoint where the majority of repeats recovered the key;
  /// 0 = resisted the full budget.
  std::array<std::size_t, 4> break_points{};
  /// Traces captured across all repeats of the suite.
  std::size_t traces_captured = 0;
  std::size_t resisted_count() const;
};

/// Runs the four attacks of the paper against one campaign factory and
/// prints the success-rate series (one row per checkpoint).
AttackSuiteResult run_attack_suite(const std::string& label,
                                   const analysis::CampaignFactory& factory,
                                   const ScaleProfile& profile);

/// Records a suite outcome into `report` as "<label>.<attack>_break"
/// metrics (unit "traces", 0 = resisted) plus a "<label>.resisted" count.
void record_suite(obs::BenchReport& report, const std::string& label,
                  const AttackSuiteResult& result);

/// Finishes a bench that captured traces: sets throughput from the global
/// "trace.traces_captured" counter and writes BENCH_<name>.json.
void finish_capture_bench(obs::BenchReport& report);

/// Markdown-ish table row helpers.
void print_rule(std::size_t width = 78);
void print_header(const std::string& title);

}  // namespace rftc::bench
