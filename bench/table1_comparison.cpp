// Table 1 reproduction: RFTC against the related-work countermeasures, all
// implemented in this repository and measured under the identical scope and
// attack pipeline.
//
// Columns: # distinct delays/completion times, security parameter
// (Eq. 1: traces survived / traces to break unprotected), CPA and DTW-CPA
// resistance, and time/power/area overheads from the FPGA model.
#include <cctype>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/clock_rand4.hpp"
#include "baselines/ippap.hpp"
#include "baselines/phase_shift.hpp"
#include "baselines/rcdd.hpp"
#include "baselines/rdi.hpp"
#include "clocking/block_ram.hpp"
#include "common.hpp"
#include "fpga/overhead.hpp"
#include "sched/fixed_clock.hpp"
#include "util/histogram.hpp"

namespace {

using namespace rftc;

struct Candidate {
  std::string name;
  std::function<std::unique_ptr<sched::Scheduler>(std::uint64_t seed)>
      make_scheduler;
  fpga::ResourceInventory resources;
  /// Paper Table 1 values for side-by-side printing ("-" = NA).
  std::string paper_delays, paper_secparam, paper_time, paper_power,
      paper_area;
};

std::size_t measure_distinct_delays(sched::Scheduler& s, std::size_t n) {
  // Quantize to 10 ps so picosecond rounding of rational periods does not
  // split completion times that coincide exactly in continuous time (e.g.
  // ClockRand's 2/24 MHz == 4/48 MHz sums).
  ExactHistogram h;
  for (std::size_t i = 0; i < n; ++i) h.add(s.next(10).completion_ps() / 10);
  return h.distinct();
}

analysis::CampaignFactory factory_for(const Candidate& c) {
  const aes::Key key = bench::evaluation_key();
  return [&c, key](std::uint64_t repeat, std::size_t n) {
    core::ScheduledAesDevice dev(key, c.make_scheduler(repeat));
    trace::PowerModelParams pm;
    trace::TraceSimulator sim(pm, 0xE000 + repeat);
    Xoshiro256StarStar rng(0xF000 + repeat);
    return trace::acquire_random(
        [&](const aes::Block& pt) { return dev.encrypt(pt); }, sim, n, rng);
  };
}

/// Smallest checkpoint at which the attack recovers the key; 0 = survived.
std::size_t break_point(const analysis::CampaignFactory& factory,
                        analysis::AttackKind kind,
                        const bench::ScaleProfile& profile) {
  analysis::AttackParams attack;
  attack.kind = kind;
  attack.byte_positions = profile.attack_bytes;
  attack.checkpoints = profile.sr_checkpoints;
  const trace::TraceSet set = factory(0, profile.sr_max_traces);
  const analysis::AttackOutcome out =
      analysis::run_attack(set, bench::evaluation_round10_key(), attack);
  return out.first_success();
}

}  // namespace

int main() {
  obs::BenchReport report("table1_comparison");
  const bench::ScaleProfile profile = bench::scale_profile();
  report.note("profile", profile.name);
  report.seed(99);  // planner seed; campaign seeds derive from 0xF000
  bench::print_header("Table 1 — RFTC vs related work, profile " +
                      profile.name);
  const std::size_t hist_n = profile.name == "full" ? 200'000 : 50'000;
  const int rftc_p = profile.name == "full" ? 1024 : 256;

  // Build the RFTC plan once (shared by scheduler factory and BRAM count).
  core::PlannerParams pp;
  pp.m_outputs = 3;
  pp.p_configs = rftc_p;
  pp.seed = 99;
  const core::FrequencyPlan plan = core::plan_frequencies(pp);
  const clk::ConfigStore store(plan.configs);

  std::vector<Candidate> candidates;
  candidates.push_back(
      {"Unprotected",
       [](std::uint64_t) {
         return std::make_unique<sched::FixedClockScheduler>(48.0);
       },
       fpga::unprotected_aes(), "1", "1", "1.00", "1.00", "1.00"});
  candidates.push_back(
      {"RDI [14]",
       [](std::uint64_t seed) {
         return std::make_unique<baselines::RdiScheduler>(48.0, 5, 800,
                                                          seed + 1);
       },
       fpga::unprotected_aes() + fpga::rdi_addition(5), "NA", ">=500", "1.64",
       "4.11", "1.81"});
  candidates.push_back(
      {"RCDD [3]",
       [](std::uint64_t seed) {
         return std::make_unique<baselines::RcddScheduler>(48.0, 2, seed + 2);
       },
       fpga::unprotected_aes() + fpga::rcdd_addition(), "NA", ">=226", "1.94",
       "NA", "1.70"});
  candidates.push_back(
      {"PhaseShift [10]",
       [](std::uint64_t seed) {
         return std::make_unique<baselines::PhaseShiftScheduler>(48.0, 8,
                                                                 seed + 3);
       },
       fpga::unprotected_aes() + fpga::phase_shift_addition(), "15", "100",
       "3.77", "NA", "NA"});
  candidates.push_back(
      {"iPPAP [19]",
       [](std::uint64_t seed) {
         return std::make_unique<baselines::IppapScheduler>(48.0, 8, 3, 12,
                                                            10, seed + 4);
       },
       fpga::unprotected_aes() + fpga::ippap_addition(), "39", "NA", "NA",
       "NA", "1.05"});
  candidates.push_back(
      {"ClockRand [9]",
       [](std::uint64_t seed) {
         return std::make_unique<baselines::ClockRand4Scheduler>(8.0,
                                                                 seed + 5);
       },
       fpga::unprotected_aes() + fpga::clock_rand4_addition(), "83", ">=6",
       "3", "1.00", "1.02"});
  candidates.push_back(
      {"RFTC(3, " + std::to_string(rftc_p) + ")",
       [&plan](std::uint64_t seed) {
         core::ControllerParams cp;
         cp.lfsr_seed_lo = seed * 2 + 1;
         cp.lfsr_seed_hi = seed;
         return std::make_unique<core::RftcController>(plan, cp);
       },
       fpga::unprotected_aes() +
           fpga::rftc_addition(2, 3, store.ramb36_count()),
       "67,584", ">=2000", "1.72", "1.48", "1.3"});

  // Reference design for overhead ratios and the security parameter.
  sched::FixedClockScheduler ref_sched(48.0);
  fpga::DesignReport ref = fpga::evaluate_design(
      "Unprotected", ref_sched, fpga::unprotected_aes(), hist_n);
  const std::size_t unprot_break =
      break_point(factory_for(candidates[0]), analysis::AttackKind::kCpa,
                  profile);

  std::printf("\n%-18s %10s %9s %6s %6s %6s %6s %6s\n", "Design", "#Delays",
              "SecParam", "CPA", "DTW", "Time", "Power", "Area");
  bench::print_rule(78);
  for (const Candidate& c : candidates) {
    const auto sched_for_hist = c.make_scheduler(7);
    const std::size_t delays = measure_distinct_delays(*sched_for_hist,
                                                       hist_n);
    const auto sched_for_power = c.make_scheduler(8);
    fpga::DesignReport rep = fpga::evaluate_design(c.name, *sched_for_power,
                                                   c.resources, hist_n);
    fpga::compute_overheads(rep, ref);

    const std::size_t cpa_break =
        break_point(factory_for(c), analysis::AttackKind::kCpa, profile);
    const std::size_t dtw_break =
        break_point(factory_for(c), analysis::AttackKind::kDtwCpa, profile);
    const std::size_t survived =
        cpa_break == 0 && dtw_break == 0
            ? profile.sr_max_traces
            : std::min(cpa_break == 0 ? profile.sr_max_traces : cpa_break,
                       dtw_break == 0 ? profile.sr_max_traces : dtw_break);
    const double sec_param =
        unprot_break ? static_cast<double>(survived) /
                           static_cast<double>(unprot_break)
                     : 0.0;

    auto fmt_break = [&](std::size_t b) {
      return b == 0 ? std::string("resist")
                    : "@" + std::to_string(b);
    };
    std::printf("%-18s %10zu %8.0f%s %6s %6s %6.2f %6.2f %6.2f\n",
                c.name.c_str(), delays, sec_param,
                (cpa_break == 0 && dtw_break == 0) ? "+" : " ",
                fmt_break(cpa_break).c_str(), fmt_break(dtw_break).c_str(),
                rep.time_overhead, rep.power_overhead, rep.area_overhead);
    std::printf("%-18s %10s %9s %6s %6s %6s %6s %6s   (paper)\n", "",
                c.paper_delays.c_str(), c.paper_secparam.c_str(), "-", "-",
                c.paper_time.c_str(), c.paper_power.c_str(),
                c.paper_area.c_str());

    // One metric block per design, keyed by a lowercased short name.
    std::string key;
    for (const char ch : c.name) {
      if (ch == ' ' || ch == '[') break;
      key += (ch == '(' || ch == ',' || ch == ')')
                 ? '_'
                 : static_cast<char>(std::tolower(ch));
    }
    while (!key.empty() && key.back() == '_') key.pop_back();
    report.metric(key + ".distinct_delays", static_cast<double>(delays));
    report.metric(key + ".sec_param", sec_param);
    report.metric(key + ".cpa_break", static_cast<double>(cpa_break),
                  "traces");
    report.metric(key + ".dtw_break", static_cast<double>(dtw_break),
                  "traces");
    report.metric(key + ".time_overhead", rep.time_overhead, "x");
    report.metric(key + ".power_overhead", rep.power_overhead, "x");
    report.metric(key + ".area_overhead", rep.area_overhead, "x");
  }
  std::printf(
      "\nSecParam = survived traces / unprotected CPA break point (%zu "
      "traces here); '+' marks designs that resisted both attacks for the "
      "full budget of %zu traces.\n",
      unprot_break, profile.sr_max_traces);
  std::printf("RFTC RAMB36 count: %u (paper: 20 at P=1024)\n",
              store.ramb36_count());
  report.metric("rftc.ramb36", static_cast<double>(store.ramb36_count()),
                "paper: 20 at P=1024");
  bench::finish_capture_bench(report);
  return 0;
}
