// Kernel microbenchmarks (google-benchmark): the hot paths of the
// simulation and attack pipeline.  Results go to the console as usual and
// to BENCH_microbench.json for machine consumption (see
// docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "aes/leakage.hpp"
#include "aes/round_engine.hpp"
#include "analysis/cpa.hpp"
#include "analysis/dtw.hpp"
#include "analysis/fft.hpp"
#include "clocking/drp_codec.hpp"
#include "common.hpp"
#include "rftc/frequency_planner.hpp"
#include "sched/fixed_clock.hpp"
#include "trace/acquisition.hpp"
#include "util/parallel.hpp"

namespace {

using namespace rftc;

void BM_AesEncrypt(benchmark::State& state) {
  const aes::Key key = bench::evaluation_key();
  aes::Block pt{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::encrypt(pt, key));
    ++pt[0];
  }
}
BENCHMARK(BM_AesEncrypt);

void BM_RoundEngine(benchmark::State& state) {
  aes::RoundEngine engine(bench::evaluation_key());
  aes::Block pt{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.encrypt(pt));
    ++pt[1];
  }
}
BENCHMARK(BM_RoundEngine);

void BM_HypothesisRow(benchmark::State& state) {
  aes::Block ct{};
  for (int i = 0; i < 16; ++i) ct[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(11 * i + 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::last_round_hypothesis_row(ct, 5));
    ++ct[5];
  }
}
BENCHMARK(BM_HypothesisRow);

void BM_TraceSimulate(benchmark::State& state) {
  core::ScheduledAesDevice dev(
      bench::evaluation_key(),
      std::make_unique<sched::FixedClockScheduler>(48.0));
  trace::PowerModelParams pm;
  trace::TraceSimulator sim(pm, 1);
  aes::Block pt{};
  for (auto _ : state) {
    const auto rec = dev.encrypt(pt);
    benchmark::DoNotOptimize(sim.simulate(rec.schedule, rec.activity));
    ++pt[2];
  }
}
BENCHMARK(BM_TraceSimulate);

void BM_CpaAdd(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  analysis::CpaEngine engine(samples, {0, 5, 10, 15},
                             aes::LeakageModel::kLastRoundHd,
                             analysis::CpaMode::kStreaming);
  std::vector<float> tr(samples, 1.0f);
  aes::Block ct{};
  for (auto _ : state) {
    engine.add(ct, tr);
    ++ct[0];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAdd)->Arg(64)->Arg(125)->Arg(250);

void BM_CpaAddBatched(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  analysis::CpaEngine engine(samples, {0, 5, 10, 15},
                             aes::LeakageModel::kLastRoundHd,
                             analysis::CpaMode::kBatched);
  std::vector<float> tr(samples, 1.0f);
  aes::Block ct{};
  for (auto _ : state) {
    engine.add(ct, tr);
    ++ct[0];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAddBatched)->Arg(64)->Arg(125)->Arg(250);

/// Feeds `n` random traces so a report pass sees realistic class sums.
analysis::CpaEngine filled_engine(analysis::CpaMode mode, std::size_t samples,
                                  std::size_t n) {
  analysis::CpaEngine engine(samples, {0, 5, 10, 15},
                             aes::LeakageModel::kLastRoundHd, mode);
  Xoshiro256StarStar rng(11);
  std::vector<float> tr(samples);
  aes::Block ct{};
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : tr) v = static_cast<float>(rng.gaussian());
    for (auto& b : ct) b = static_cast<std::uint8_t>(rng.next());
    engine.add(ct, tr);
  }
  return engine;
}

void BM_CpaReportStreaming(benchmark::State& state) {
  const auto engine = filled_engine(
      analysis::CpaMode::kStreaming, static_cast<std::size_t>(state.range(0)),
      2'048);
  for (auto _ : state) benchmark::DoNotOptimize(engine.report());
}
BENCHMARK(BM_CpaReportStreaming)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_CpaReportBatched(benchmark::State& state) {
  const auto engine = filled_engine(
      analysis::CpaMode::kBatched, static_cast<std::size_t>(state.range(0)),
      2'048);
  for (auto _ : state) benchmark::DoNotOptimize(engine.report());
}
BENCHMARK(BM_CpaReportBatched)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n, 1.0);
  for (auto _ : state) {
    par::parallel_for(0, n, 1'024, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) v[i] = v[i] * 1.0000001 + 0.5;
    });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 16);

void BM_DtwAlign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(3);
  std::vector<double> ref(n);
  std::vector<float> tr(n);
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = rng.gaussian();
    tr[i] = static_cast<float>(rng.gaussian());
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::dtw_align(ref, tr, {.band = 16}));
}
BENCHMARK(BM_DtwAlign)->Arg(125)->Arg(250);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(5);
  std::vector<float> sig(n);
  for (auto& v : sig) v = static_cast<float>(rng.gaussian());
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::magnitude_spectrum(sig));
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(512);

void BM_DrpEncode(benchmark::State& state) {
  clk::MmcmConfig cfg;
  cfg.fin_mhz = 24.0;
  cfg.mult_8ths = 40 * 8;
  cfg.divclk = 1;
  cfg.out_div_8ths = {20 * 8, 24 * 8, 30 * 8, 8, 8, 8, 8};
  for (auto _ : state) benchmark::DoNotOptimize(clk::encode_config(cfg));
}
BENCHMARK(BM_DrpEncode);

void BM_EnumerateCompletionTimes(benchmark::State& state) {
  const std::vector<Picoseconds> periods = {20'833, 30'000, 41'667};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::enumerate_completion_times(periods, 10));
}
BENCHMARK(BM_EnumerateCompletionTimes);

void BM_PlanFrequencies(benchmark::State& state) {
  for (auto _ : state) {
    core::PlannerParams pp;
    pp.m_outputs = 3;
    pp.p_configs = static_cast<int>(state.range(0));
    pp.seed = 1;
    benchmark::DoNotOptimize(core::plan_frequencies(pp));
  }
}
BENCHMARK(BM_PlanFrequencies)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

/// Console output plus per-benchmark metrics captured into the bench
/// report.  BM_TraceSimulate doubles as the headline throughput: one
/// iteration is one full encrypt + trace synthesis, i.e. one trace.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  // Tabular but uncolored: the default OO_Color writes ANSI escapes even
  // into pipes, which breaks downstream grep/CI log parsing.
  explicit CaptureReporter(obs::BenchReport& report)
      : ConsoleReporter(OO_Tabular), report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      report_.metric(name, run.GetAdjustedRealTime(),
                     benchmark::GetTimeUnitString(run.time_unit));
      if (name == "BM_TraceSimulate" && run.iterations > 0) {
        report_.throughput(static_cast<double>(run.iterations) /
                               run.real_accumulated_time,
                           "traces/s");
      }
    }
  }

 private:
  obs::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  rftc::obs::BenchReport report("microbench");
  report.seed(1);  // fixtures use small fixed per-benchmark seeds
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
