// Kernel microbenchmarks (google-benchmark): the hot paths of the
// simulation and attack pipeline.  Results go to the console as usual and
// to BENCH_microbench.json for machine consumption (see
// docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "aes/leakage.hpp"
#include "aes/round_engine.hpp"
#include "analysis/cpa.hpp"
#include "analysis/dtw.hpp"
#include "analysis/fft.hpp"
#include "clocking/drp_codec.hpp"
#include "common.hpp"
#include "obs/metrics.hpp"
#include "simd/simd.hpp"
#include "rftc/frequency_planner.hpp"
#include "sched/fixed_clock.hpp"
#include "trace/acquisition.hpp"
#include "util/parallel.hpp"

namespace {

using namespace rftc;

void BM_AesEncrypt(benchmark::State& state) {
  const aes::Key key = bench::evaluation_key();
  aes::Block pt{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::encrypt(pt, key));
    ++pt[0];
  }
}
BENCHMARK(BM_AesEncrypt);

void BM_RoundEngine(benchmark::State& state) {
  aes::RoundEngine engine(bench::evaluation_key());
  aes::Block pt{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.encrypt(pt));
    ++pt[1];
  }
}
BENCHMARK(BM_RoundEngine);

void BM_HypothesisRow(benchmark::State& state) {
  aes::Block ct{};
  for (int i = 0; i < 16; ++i) ct[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(11 * i + 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::last_round_hypothesis_row(ct, 5));
    ++ct[5];
  }
}
BENCHMARK(BM_HypothesisRow);

void BM_TraceSimulate(benchmark::State& state) {
  core::ScheduledAesDevice dev(
      bench::evaluation_key(),
      std::make_unique<sched::FixedClockScheduler>(48.0));
  trace::PowerModelParams pm;
  trace::TraceSimulator sim(pm, 1);
  aes::Block pt{};
  for (auto _ : state) {
    const auto rec = dev.encrypt(pt);
    benchmark::DoNotOptimize(sim.simulate(rec.schedule, rec.activity));
    ++pt[2];
  }
}
BENCHMARK(BM_TraceSimulate);

void BM_CpaAdd(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  analysis::CpaEngine engine(samples, {0, 5, 10, 15},
                             aes::LeakageModel::kLastRoundHd,
                             analysis::CpaMode::kStreaming);
  std::vector<float> tr(samples, 1.0f);
  aes::Block ct{};
  for (auto _ : state) {
    engine.add(ct, tr);
    ++ct[0];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAdd)->Arg(64)->Arg(125)->Arg(250);

void BM_CpaAddBatched(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  analysis::CpaEngine engine(samples, {0, 5, 10, 15},
                             aes::LeakageModel::kLastRoundHd,
                             analysis::CpaMode::kBatched);
  std::vector<float> tr(samples, 1.0f);
  aes::Block ct{};
  for (auto _ : state) {
    engine.add(ct, tr);
    ++ct[0];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAddBatched)->Arg(64)->Arg(125)->Arg(250);

/// Feeds `n` random traces so a report pass sees realistic class sums.
analysis::CpaEngine filled_engine(analysis::CpaMode mode, std::size_t samples,
                                  std::size_t n) {
  analysis::CpaEngine engine(samples, {0, 5, 10, 15},
                             aes::LeakageModel::kLastRoundHd, mode);
  Xoshiro256StarStar rng(11);
  std::vector<float> tr(samples);
  aes::Block ct{};
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : tr) v = static_cast<float>(rng.gaussian());
    for (auto& b : ct) b = static_cast<std::uint8_t>(rng.next());
    engine.add(ct, tr);
  }
  return engine;
}

void BM_CpaReportStreaming(benchmark::State& state) {
  const auto engine = filled_engine(
      analysis::CpaMode::kStreaming, static_cast<std::size_t>(state.range(0)),
      2'048);
  for (auto _ : state) benchmark::DoNotOptimize(engine.report());
}
BENCHMARK(BM_CpaReportStreaming)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_CpaReportBatched(benchmark::State& state) {
  const auto engine = filled_engine(
      analysis::CpaMode::kBatched, static_cast<std::size_t>(state.range(0)),
      2'048);
  for (auto _ : state) benchmark::DoNotOptimize(engine.report());
}
BENCHMARK(BM_CpaReportBatched)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n, 1.0);
  for (auto _ : state) {
    par::parallel_for(0, n, 1'024, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) v[i] = v[i] * 1.0000001 + 0.5;
    });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 16);

void BM_DtwAlign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(3);
  std::vector<double> ref(n);
  std::vector<float> tr(n);
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = rng.gaussian();
    tr[i] = static_cast<float>(rng.gaussian());
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::dtw_align(ref, tr, {.band = 16}));
}
BENCHMARK(BM_DtwAlign)->Arg(125)->Arg(250);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(5);
  std::vector<float> sig(n);
  for (auto& v : sig) v = static_cast<float>(rng.gaussian());
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::magnitude_spectrum(sig));
}
BENCHMARK(BM_Fft)->Arg(128)->Arg(512);

void BM_DrpEncode(benchmark::State& state) {
  clk::MmcmConfig cfg;
  cfg.fin_mhz = 24.0;
  cfg.mult_8ths = 40 * 8;
  cfg.divclk = 1;
  cfg.out_div_8ths = {20 * 8, 24 * 8, 30 * 8, 8, 8, 8, 8};
  for (auto _ : state) benchmark::DoNotOptimize(clk::encode_config(cfg));
}
BENCHMARK(BM_DrpEncode);

void BM_EnumerateCompletionTimes(benchmark::State& state) {
  const std::vector<Picoseconds> periods = {20'833, 30'000, 41'667};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::enumerate_completion_times(periods, 10));
}
BENCHMARK(BM_EnumerateCompletionTimes);

void BM_PlanFrequencies(benchmark::State& state) {
  for (auto _ : state) {
    core::PlannerParams pp;
    pp.m_outputs = 3;
    pp.p_configs = static_cast<int>(state.range(0));
    pp.seed = 1;
    benchmark::DoNotOptimize(core::plan_frequencies(pp));
  }
}
BENCHMARK(BM_PlanFrequencies)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

/// Deterministic 1-NN template-matching workload for the DTW early-abandon
/// gate: one query plus `count` candidates at paper-scale lengths.
/// Candidate 0 is a near-duplicate of the query so the best-so-far cutoff
/// collapses immediately; four candidates are the query with a reversed
/// interior (same endpoints and extrema, so LB_Kim passes and the DP must
/// abandon mid-sweep); the rest are independent random walks whose value
/// ranges differ enough for the O(n+m) lower bound to reject them outright.
std::vector<std::vector<double>> dtw_gate_candidates(
    const std::vector<double>& query, std::size_t count) {
  Xoshiro256StarStar rng(97);
  std::vector<std::vector<double>> cands(count);
  cands[0] = query;
  for (auto& v : cands[0]) v += 1e-3 * rng.gaussian();
  for (std::size_t c = 1; c < 5 && c < count; ++c) {
    cands[c] = query;
    std::reverse(cands[c].begin() + 1 + static_cast<std::ptrdiff_t>(c),
                 cands[c].end() - 1);
  }
  for (std::size_t c = 5; c < count; ++c) {
    cands[c].resize(query.size());
    double x = rng.gaussian();
    for (auto& v : cands[c]) v = x += 0.05 * rng.gaussian();
  }
  return cands;
}

/// Times the 1-NN search over `cands`.  `pruned` threads the best-so-far
/// distance through DtwParams::max_distance; the baseline leaves the cutoff
/// at infinity, i.e. the pre-pruning banded DP on every candidate.
double dtw_gate_search(const std::vector<double>& query,
                       const std::vector<std::vector<double>>& cands,
                       bool pruned, double* best_out) {
  const auto t0 = std::chrono::steady_clock::now();
  double best = std::numeric_limits<double>::infinity();
  for (const auto& c : cands) {
    analysis::DtwParams params{.band = 64};
    if (pruned) params.max_distance = best;
    const double d = analysis::dtw_distance(query, c, params);
    if (d < best) best = d;
  }
  const auto t1 = std::chrono::steady_clock::now();
  *best_out = best;
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Self-gating DTW pruning benchmark (outside google-benchmark so the
/// iteration count — and therefore the prune-counter deltas recorded as
/// exact "count" metrics — is deterministic).  Measures the same banded
/// 1-NN search with and without early abandoning and fails the bench if
/// the speedup drops below 10x or pruning changes the search result.
bool run_dtw_speedup_gate(obs::BenchReport& report) {
  constexpr std::size_t kLen = 1'536;
  constexpr std::size_t kCands = 48;
  constexpr int kRepeats = 3;
  Xoshiro256StarStar rng(31);
  std::vector<double> query(kLen);
  double x = 0.0;
  for (auto& v : query) v = x += 0.05 * rng.gaussian();
  const auto cands = dtw_gate_candidates(query, kCands);

  auto& lb = obs::Registry::global().counter("analysis.dtw.lb_kim_rejects");
  auto& ea = obs::Registry::global().counter("analysis.dtw.early_abandons");
  const double lb0 = static_cast<double>(lb.value());
  const double ea0 = static_cast<double>(ea.value());

  double unpruned = std::numeric_limits<double>::infinity();
  double pruned = std::numeric_limits<double>::infinity();
  double best_unpruned = 0.0;
  double best_pruned = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    unpruned = std::min(
        unpruned, dtw_gate_search(query, cands, false, &best_unpruned));
    pruned =
        std::min(pruned, dtw_gate_search(query, cands, true, &best_pruned));
  }
  const double speedup = unpruned / pruned;
  report.metric("dtw_unpruned_seconds", unpruned, "s");
  report.metric("dtw_pruned_seconds", pruned, "s");
  report.metric("dtw_speedup_vs_naive", speedup, "x");
  // Per-repeat reject/abandon tallies are a pure function of the fixed
  // candidate set, so the deltas are exact-match "count" metrics.
  report.metric("dtw_lb_kim_rejects",
                static_cast<double>(lb.value()) - lb0, "count");
  report.metric("dtw_early_abandons",
                static_cast<double>(ea.value()) - ea0, "count");
  std::printf(
      "DTW 1-NN (%zu cands x len %zu, band 64): unpruned %.3fs, pruned "
      "%.3fs, speedup %.1fx\n",
      kCands, kLen, unpruned, pruned, speedup);
  if (best_pruned != best_unpruned) {
    std::fprintf(stderr,
                 "FAIL: pruned 1-NN distance %.17g != unpruned %.17g\n",
                 best_pruned, best_unpruned);
    return false;
  }
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: DTW early-abandon speedup %.2fx below the 10x gate\n",
                 speedup);
    return false;
  }
  return true;
}

/// Console output plus per-benchmark metrics captured into the bench
/// report.  BM_TraceSimulate doubles as the headline throughput: one
/// iteration is one full encrypt + trace synthesis, i.e. one trace.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  // Tabular but uncolored: the default OO_Color writes ANSI escapes even
  // into pipes, which breaks downstream grep/CI log parsing.
  explicit CaptureReporter(obs::BenchReport& report)
      : ConsoleReporter(OO_Tabular), report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      report_.metric(name, run.GetAdjustedRealTime(),
                     benchmark::GetTimeUnitString(run.time_unit));
      if (name == "BM_TraceSimulate" && run.iterations > 0) {
        report_.throughput(static_cast<double>(run.iterations) /
                               run.real_accumulated_time,
                           "traces/s");
      }
    }
  }

 private:
  obs::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  rftc::obs::BenchReport report("microbench");
  report.seed(1);  // fixtures use small fixed per-benchmark seeds
  report.note("simd_isa", rftc::simd::backend_name());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const bool dtw_ok = run_dtw_speedup_gate(report);
  report.write();
  return dtw_ok ? 0 : 1;
}
