#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sched/fixed_clock.hpp"
#include "simd/simd.hpp"

namespace rftc::bench {

aes::Key evaluation_key() {
  // The FIPS-197 Appendix B key: well known and easy to eyeball in output.
  return {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
          0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
}

aes::Block evaluation_round10_key() {
  return aes::expand_key(evaluation_key())[10];
}

ScaleProfile scale_profile() {
  const char* env = std::getenv("RFTC_SCALE");
  const bool full = env != nullptr && std::strcmp(env, "full") == 0;
  if (full) {
    return {.name = "full",
            .sr_max_traces = 100'000,
            .sr_checkpoints = {1'000, 2'000, 5'000, 10'000, 25'000, 50'000,
                               100'000},
            .sr_repeats = 10,
            .tvla_traces = 50'000,
            .histogram_encryptions = 1'000'000,
            .attack_bytes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                             14, 15}};
  }
  return {.name = "fast",
          .sr_max_traces = 48'000,
          .sr_checkpoints = {1'000, 3'000, 8'000, 16'000, 32'000, 48'000},
          .sr_repeats = 3,
          .tvla_traces = 12'000,
          .histogram_encryptions = 1'000'000,
          .attack_bytes = {0, 5, 10, 15}};
}

namespace {

/// Weyl increment used to derive independent per-shard seeds.
constexpr std::uint64_t kShardGolden = 0x9E3779B97F4A7C15ULL;

}  // namespace

trace::CaptureShardFactory rftc_shard_factory(int m, int p,
                                              std::uint64_t mix) {
  const aes::Key key = evaluation_key();
  // Pure shard factory: shard j's device and simulator seeds depend only
  // on (mix, j), so the campaign is bit-identical under any RFTC_THREADS
  // (see trace::CaptureShardFactory).  The device is shared_ptr-owned
  // because Encryptor (std::function) requires a copyable callable.
  return [key, m, p, mix](std::size_t shard) {
    const std::uint64_t salt =
        SplitMix64(mix ^ (kShardGolden * (shard + 1))).next();
    auto dev = std::make_shared<core::RftcDevice>(
        core::RftcDevice::make(key, m, p, salt | 1));
    trace::PowerModelParams pm;
    return trace::CaptureShard{
        [dev](const aes::Block& pt) { return dev->encrypt(pt); },
        trace::TraceSimulator(pm, salt ^ 0xA5A5A5A5ULL)};
  };
}

trace::CaptureShardFactory unprotected_shard_factory(std::uint64_t mix) {
  const aes::Key key = evaluation_key();
  return [key, mix](std::size_t shard) {
    const std::uint64_t salt =
        SplitMix64(mix ^ (kShardGolden * (shard + 1))).next();
    auto dev = std::make_shared<core::ScheduledAesDevice>(
        key, std::make_unique<sched::FixedClockScheduler>(48.0));
    trace::PowerModelParams pm;
    return trace::CaptureShard{
        [dev](const aes::Block& pt) { return dev->encrypt(pt); },
        trace::TraceSimulator(pm, salt)};
  };
}

std::uint64_t rftc_campaign_mix(int m, int p, std::uint64_t repeat) {
  return SplitMix64(0x5EED0000 + static_cast<std::uint64_t>(m) * 7919 +
                    static_cast<std::uint64_t>(p) * 104729 + repeat)
      .next();
}

analysis::CampaignFactory rftc_factory(int m, int p) {
  return [m, p](std::uint64_t repeat, std::size_t n) {
    const std::uint64_t mix = rftc_campaign_mix(m, p, repeat);
    return trace::acquire_random_parallel(rftc_shard_factory(m, p, mix), n,
                                          mix + 0xB0B0B0B0ULL);
  };
}

analysis::CampaignFactory unprotected_factory() {
  return [](std::uint64_t repeat, std::size_t n) {
    const std::uint64_t mix = SplitMix64(0xC000 + repeat).next();
    return trace::acquire_random_parallel(unprotected_shard_factory(mix), n,
                                          0xD000 + repeat);
  };
}

std::size_t AttackSuiteResult::resisted_count() const {
  std::size_t n = 0;
  for (const std::size_t b : break_points)
    if (b == 0) ++n;
  return n;
}

AttackSuiteResult run_attack_suite(const std::string& label,
                                   const analysis::CampaignFactory& factory,
                                   const ScaleProfile& profile) {
  using analysis::AttackKind;
  constexpr AttackKind kKinds[] = {AttackKind::kCpa, AttackKind::kPcaCpa,
                                   AttackKind::kDtwCpa, AttackKind::kFftCpa};
  const aes::Block rk10 = evaluation_round10_key();
  std::printf("\n-- %s --\n", label.c_str());
  std::printf("%-10s", "traces");
  for (const std::size_t c : profile.sr_checkpoints)
    std::printf("%10zu", c);
  std::printf("\n");
  std::fflush(stdout);

  // Every suite extends the heartbeat denominator by its own capture plan,
  // so a bench that runs several suites shows campaign-wide progress.
  obs::add_campaign_total(static_cast<double>(profile.sr_repeats) *
                          static_cast<double>(profile.sr_max_traces));

  // One campaign per repetition, shared by all four attack kinds (each
  // attack sees the same adversary budget, as in the paper's evaluation).
  std::vector<std::vector<double>> rate(4);
  for (auto& r : rate) r.assign(profile.sr_checkpoints.size(), 0.0);
  for (unsigned rep = 0; rep < profile.sr_repeats; ++rep) {
    const trace::TraceSet set = factory(rep, profile.sr_max_traces);
    for (std::size_t k = 0; k < 4; ++k) {
      analysis::AttackParams attack;
      attack.kind = kKinds[k];
      attack.byte_positions = profile.attack_bytes;
      attack.checkpoints = profile.sr_checkpoints;
      const analysis::AttackOutcome out =
          analysis::run_attack(set, rk10, attack);
      for (std::size_t i = 0; i < out.checkpoints.size(); ++i)
        rate[k][i] += out.success[i] ? 1.0 : 0.0;
    }
  }
  AttackSuiteResult result;
  result.traces_captured = profile.sr_repeats * profile.sr_max_traces;
  for (std::size_t k = 0; k < 4; ++k) {
    result.attack_names[k] = analysis::attack_name(kKinds[k]);
    std::printf("%-10s", result.attack_names[k].c_str());
    std::size_t broke = 0;
    for (std::size_t i = 0; i < profile.sr_checkpoints.size(); ++i) {
      const double s = rate[k][i] / profile.sr_repeats;
      std::printf("%10.2f", s);
      if (broke == 0 && s >= 0.5) broke = profile.sr_checkpoints[i];
    }
    result.break_points[k] = broke;
    if (broke != 0) {
      std::printf("   BROKEN @ %zu\n", broke);
    } else {
      std::printf("   not broken\n");
    }
    std::fflush(stdout);
  }
  return result;
}

void record_suite(obs::BenchReport& report, const std::string& label,
                  const AttackSuiteResult& result) {
  for (std::size_t k = 0; k < 4; ++k) {
    report.metric(label + "." + result.attack_names[k] + "_break",
                  static_cast<double>(result.break_points[k]), "traces");
  }
  report.metric(label + ".resisted",
                static_cast<double>(result.resisted_count()), "attacks");
}

void finish_capture_bench(obs::BenchReport& report) {
  const double captured = static_cast<double>(
      obs::Registry::global().counter("trace.traces_captured").value());
  report.note("simd_isa", simd::backend_name());
  report.metric("traces_captured", captured, "traces");
  report.throughput(captured / report.elapsed_seconds(), "traces/s");
  report.write();
}

void print_rule(std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace rftc::bench
