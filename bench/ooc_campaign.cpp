// Bounded-memory out-of-core campaign: a fig6-style TVLA run where the
// corpus never lives in RAM.  Acquisition streams both populations into
// chunked trace stores (trace::acquire_tvla_store), the Welch t-test then
// streams the stores back chunk-by-chunk (analysis::run_tvla on a
// StoredTvlaCapture), and the bench gates itself on the kernel-reported
// peak RSS staying under half the on-disk corpus size — the proof that the
// pipeline really runs in O(chunk) memory, machine-independent because the
// bound scales with the corpus the bench itself created.
//
// Knobs:
//   RFTC_OOC_TRACES    traces per population (default 40,000)
//   RFTC_STORE_DIR     where the .rtst stores go (default: temp dir;
//                      the stores are kept so CI can run `rftc-trace
//                      verify` on them afterwards)
//   RFTC_TRACE_CHUNK   traces per chunk (store default: 1024)
//
// Exit codes: 0 = completed and bounded, 1 = store corruption or the RSS
// gate failed.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "analysis/tvla.hpp"
#include "common.hpp"
#include "obs/resource.hpp"
#include "trace/trace_store.hpp"

namespace {

using namespace rftc;

}  // namespace

int main() {
  obs::BenchReport report("ooc_campaign");
  std::size_t n = 40'000;
  if (const char* env = std::getenv("RFTC_OOC_TRACES")) {
    const long v = std::atol(env);
    if (v > 0) n = static_cast<std::size_t>(v);
  }
  std::string dir;
  if (const char* env = std::getenv("RFTC_STORE_DIR")) {
    dir = env;
    std::filesystem::create_directories(dir);
  } else {
    dir = std::filesystem::temp_directory_path().string();
  }
  const std::string fixed_path = dir + "/ooc_tvla_fixed.rtst";
  const std::string random_path = dir + "/ooc_tvla_random.rtst";

  const std::uint64_t seed = 31'337;
  report.seed(seed);
  bench::print_header("Out-of-core TVLA campaign, RFTC(3, 1024), " +
                      std::to_string(n) + " traces per population");

  // The standard TVLA fixed plaintext (as in fig6_tvla).
  const aes::Block tvla_fixed = {0xDA, 0x39, 0xA3, 0xEE, 0x5E, 0x6B,
                                 0x4B, 0x0D, 0x32, 0x55, 0xBF, 0xEF,
                                 0x95, 0x60, 0x18, 0x90};

  const trace::CaptureShardFactory factory =
      bench::rftc_shard_factory(3, 1024, seed);
  const std::size_t samples = factory(0).sim.samples();
  {
    trace::TraceStoreWriter fixed_w(fixed_path, samples);
    trace::TraceStoreWriter random_w(random_path, samples);
    trace::acquire_tvla_store(factory, n, tvla_fixed, seed + 1, fixed_w,
                              random_w);
    fixed_w.finalize();
    random_w.finalize();
  }

  trace::StoredTvlaCapture stored{trace::TraceStore(fixed_path),
                                  trace::TraceStore(random_path)};
  const double corpus_mib =
      static_cast<double>(stored.fixed.file_bytes() +
                          stored.random.file_bytes()) /
      (1024.0 * 1024.0);
  report.metric("corpus_mib", corpus_mib, "MiB");
  report.metric("chunks",
                static_cast<double>(stored.fixed.chunk_count() +
                                    stored.random.chunk_count()),
                "count");
  report.note("fixed_store", fixed_path);
  report.note("random_store", random_path);

  // Integrity sweep before analysis: a corrupted corpus must fail loudly.
  for (const trace::TraceStore* s : {&stored.fixed, &stored.random}) {
    const trace::StoreVerifyResult v = s->verify();
    if (!v.ok) {
      std::fprintf(stderr, "ooc_campaign: %s: %s\n", s->path().c_str(),
                   v.error.c_str());
      return 1;
    }
  }

  const analysis::TvlaResult res = analysis::run_tvla(stored);
  std::printf("max |t| %.2f at sample %zu, %zu leaking samples — %s\n",
              res.max_abs_t, res.worst_sample, res.leaking_samples,
              res.passes() ? "PASS (<4.5)" : "leaks");
  report.metric("max_abs_t", res.max_abs_t, "|t|");
  report.metric("leaking_samples", static_cast<double>(res.leaking_samples),
                "count");

  // The bounded-memory gate.  Peak RSS covers the whole process life —
  // acquisition groups, chunk windows, Welch accumulators, allocator slack
  // — and must stay under half the corpus it just processed twice (once
  // writing, once reading).  An accidental whole-corpus materialization
  // anywhere in the streamed path blows this immediately.
  const double peak_mib = obs::peak_rss_mib();
  const double ratio = peak_mib / corpus_mib;
  std::printf("corpus %.1f MiB on disk, peak RSS %.1f MiB (%.2fx)\n",
              corpus_mib, peak_mib, ratio);
  report.metric("peak_rss_mib", peak_mib, "MiB");
  report.throughput(static_cast<double>(2 * n) / report.elapsed_seconds(),
                    "traces/s");
  report.write();
  if (peak_mib * 2.0 >= corpus_mib) {
    std::fprintf(stderr,
                 "ooc_campaign: peak RSS %.1f MiB is not under half the "
                 "%.1f MiB corpus — the out-of-core path is not bounded\n",
                 peak_mib, corpus_mib);
    return 1;
  }
  return 0;
}
