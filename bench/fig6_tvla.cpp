// Fig. 6 reproduction: TVLA (fixed-vs-random Welch t) for RFTC(M, P) with
// M in {1, 2, 3} and P in {4, 1024}, against the unprotected reference.
//
// Paper shape: M=1 leaks far beyond ±4.5 for both P; M=2 hovers around the
// limit; M=3 stays within ±4.5 except at the plaintext-load samples (the
// interface clock is not randomized).
// Out-of-core mode: set RFTC_STORE_DIR=<dir> and each configuration's
// populations are streamed into chunked .rtst stores there (via the same
// sharded acquisition discipline as the parallel in-RAM path) and the
// Welch sweep reads them back chunk-by-chunk — resident memory stays
// O(chunk) no matter how large RFTC_SCALE makes the corpus.  Note the
// sharded campaigns are different (equally random) draws than the serial
// in-RAM capture below, so per-config |t| values differ between modes;
// the shape conclusions are the same.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/convergence.hpp"
#include "analysis/tvla.hpp"
#include "common.hpp"
#include "obs/resource.hpp"
#include "obs/sampler.hpp"
#include "sched/fixed_clock.hpp"
#include "trace/trace_store.hpp"
#include "util/io.hpp"

namespace {

using namespace rftc;

// The standard TVLA fixed plaintext.
constexpr aes::Block kTvlaFixed = {0xDA, 0x39, 0xA3, 0xEE, 0x5E, 0x6B,
                                   0x4B, 0x0D, 0x32, 0x55, 0xBF, 0xEF,
                                   0x95, 0x60, 0x18, 0x90};

analysis::TvlaResult tvla_for_encryptor(const trace::Encryptor& enc,
                                        std::size_t n_per_pop,
                                        std::uint64_t seed,
                                        analysis::ConvergenceMonitor* monitor) {
  trace::PowerModelParams pm;
  trace::TraceSimulator sim(pm, seed);
  Xoshiro256StarStar rng(seed + 1);
  const trace::TvlaCapture cap =
      trace::acquire_tvla(enc, sim, n_per_pop, kTvlaFixed, rng);
  return analysis::run_tvla(cap, monitor);
}

analysis::TvlaResult tvla_out_of_core(const trace::CaptureShardFactory& factory,
                                      std::size_t n_per_pop,
                                      std::uint64_t seed,
                                      const std::string& dir,
                                      const std::string& label,
                                      analysis::ConvergenceMonitor* monitor,
                                      obs::BenchReport& report) {
  const std::string fixed_path = dir + "/fig6_" + label + "_fixed.rtst";
  const std::string random_path = dir + "/fig6_" + label + "_random.rtst";
  const std::size_t samples = factory(0).sim.samples();
  {
    trace::TraceStoreWriter fixed_w(fixed_path, samples);
    trace::TraceStoreWriter random_w(random_path, samples);
    trace::acquire_tvla_store(factory, n_per_pop, kTvlaFixed, seed + 1,
                              fixed_w, random_w);
    fixed_w.finalize();
    random_w.finalize();
  }
  trace::StoredTvlaCapture stored{trace::TraceStore(fixed_path),
                                  trace::TraceStore(random_path)};
  report.note(label + ".fixed_store", fixed_path);
  report.note(label + ".random_store", random_path);
  report.metric(label + ".chunks",
                static_cast<double>(stored.fixed.chunk_count() +
                                    stored.random.chunk_count()),
                "count");
  return analysis::run_tvla(stored, monitor);
}

void report_line(const std::string& label, const analysis::TvlaResult& res,
                 std::size_t load_region_end) {
  double max_load = 0.0, max_crypto = 0.0;
  std::size_t leaks_crypto = 0;
  for (std::size_t s = 0; s < res.t_values.size(); ++s) {
    const double a = std::abs(res.t_values[s]);
    if (s < load_region_end) {
      max_load = std::max(max_load, a);
    } else {
      max_crypto = std::max(max_crypto, a);
      if (a > analysis::kTvlaThreshold) ++leaks_crypto;
    }
  }
  const char* verdict =
      max_crypto > analysis::kTvlaThreshold
          ? "LEAKS (crypto)"
          : (max_load > analysis::kTvlaThreshold ? "load stage only"
                                                 : "PASS (<4.5)");
  std::printf("%-28s max|t| load %7.2f / crypto %7.2f  leaking crypto "
              "samples %4zu  %s\n",
              label.c_str(), max_load, max_crypto, leaks_crypto, verdict);
}

}  // namespace

int main() {
  obs::BenchReport report("fig6_tvla");
  const bench::ScaleProfile profile = bench::scale_profile();
  const std::size_t n = profile.tvla_traces;
  report.seed(900);  // base of the per-config capture seeds below
  report.note("profile", profile.name);
  report.metric("traces_per_population", static_cast<double>(n), "traces");
  // Heartbeat denominator: 7 configurations × 2 populations × n traces.
  obs::set_campaign_total(14.0 * static_cast<double>(n));
  std::string store_dir;
  if (const char* env = std::getenv("RFTC_STORE_DIR")) {
    store_dir = env;
    std::filesystem::create_directories(store_dir);
    report.note("mode", "out-of-core");
  }
  bench::print_header("Fig. 6 — TVLA, " + std::to_string(n) +
                      " traces per population, profile " + profile.name +
                      (store_dir.empty() ? "" : ", out-of-core"));

  const aes::Key key = bench::evaluation_key();
  // The plaintext-load edge sits at ~41.7 ns; with 2 ns sampling the load
  // region spans roughly the first 40 samples.
  const std::size_t load_region = 40;

  core::ScheduledAesDevice unprot(
      key, std::make_unique<sched::FixedClockScheduler>(48.0));
  analysis::ConvergenceMonitor mon_u;
  const auto res_u =
      store_dir.empty()
          ? tvla_for_encryptor(
                [&](const aes::Block& pt) { return unprot.encrypt(pt); }, n,
                900, &mon_u)
          : tvla_out_of_core(bench::unprotected_shard_factory(900), n, 900,
                             store_dir, "unprotected", &mon_u, report);
  report_line("Unprotected @ 48 MHz", res_u, load_region);
  report.metric("unprotected.max_abs_t", res_u.max_abs_t, "|t|");
  mon_u.emit(report.manifest(), "unprotected.");

  std::vector<std::vector<double>> curves;
  for (const int m : {1, 2, 3}) {
    for (const int p : {4, 1024}) {
      const std::string label =
          "rftc_" + std::to_string(m) + "_" + std::to_string(p);
      const std::uint64_t seed =
          1'000 + static_cast<std::uint64_t>(m * 100 + p);
      core::RftcDevice dev = core::RftcDevice::make(
          key, m, p, 7'000 + static_cast<std::uint64_t>(m * 10 + p));
      analysis::ConvergenceMonitor monitor;
      const auto res =
          store_dir.empty()
              ? tvla_for_encryptor(
                    [&](const aes::Block& pt) { return dev.encrypt(pt); }, n,
                    seed, &monitor)
              : tvla_out_of_core(bench::rftc_shard_factory(m, p, seed), n,
                                 seed, store_dir, label, &monitor, report);
      report_line("RFTC(" + std::to_string(m) + ", " + std::to_string(p) +
                      ")",
                  res, load_region);
      report.metric(label + ".max_abs_t", res.max_abs_t, "|t|");
      monitor.emit(report.manifest(), label + ".");
      if (m == 3 && p == 1024) {
        std::printf("\nTVLA convergence, RFTC(3, 1024) (|t| over the trace "
                    "axis, log-spaced checkpoints):\n");
        monitor.print_tvla_table();
      }
      if (p == 1024) curves.push_back(res.t_values);
    }
  }

  std::printf("\n|t| curves for RFTC(M, 1024), M = 1 (a), 2 (b), 3 (c):\n");
  for (auto& c : curves)
    for (auto& v : c) v = std::abs(v);
  std::printf("%s", ascii_plot(curves, 78, 16).c_str());
  std::printf(
      "\nExpected (paper): M=1 leaks heavily for both P; M=2 around the "
      "±4.5 limit; M=3 within ±4.5 except the plaintext-load region.\n");
  if (!store_dir.empty()) {
    const double peak_mib = obs::peak_rss_mib();
    std::printf("out-of-core peak RSS: %.1f MiB\n", peak_mib);
    report.metric("peak_rss_mib", peak_mib, "MiB");
  }
  bench::finish_capture_bench(report);
  return 0;
}
