// Fig. 3 reproduction: completion-time histograms over one million
// encryptions for (a) unprotected AES at 48 MHz, (b) RFTC(3, P) with
// naively chosen frequencies (overlaps allowed) and (c) RFTC(3, P) with the
// overlap-free planner.
//
// The paper's claims checked here: (a) is a single spike at 208.33 ns; (b)
// shows concentrated peaks (the annotated leak); (c) spans 208.33-833.32 ns
// near-uniformly with fewer than ~130 identical completion times per
// million encryptions.
#include <cstdio>

#include "common.hpp"
#include "rftc/controller.hpp"
#include "sched/fixed_clock.hpp"
#include "util/histogram.hpp"

namespace {

using namespace rftc;

struct HistReport {
  ExactHistogram exact;
  Histogram binned{200.0, 840.0, 64};
  Picoseconds min_ps = INT64_MAX, max_ps = 0;
};

HistReport run_histogram(sched::Scheduler& sched, std::size_t n) {
  HistReport rep;
  for (std::size_t i = 0; i < n; ++i) {
    const Picoseconds c = sched.next(10).completion_ps();
    rep.exact.add(c);
    rep.binned.add(to_ns(c));
    rep.min_ps = std::min(rep.min_ps, c);
    rep.max_ps = std::max(rep.max_ps, c);
  }
  return rep;
}

void print_report(const char* label, const HistReport& rep) {
  std::printf("\n[%s]\n", label);
  std::printf("  encryptions            : %llu\n",
              static_cast<unsigned long long>(rep.exact.total()));
  std::printf("  completion range       : %.2f .. %.2f ns\n",
              to_ns(rep.min_ps), to_ns(rep.max_ps));
  std::printf("  distinct completions   : %zu\n", rep.exact.distinct());
  std::printf("  max identical count    : %llu\n",
              static_cast<unsigned long long>(rep.exact.max_multiplicity()));
  std::printf("  occupied histogram bins: %zu / %zu\n",
              rep.binned.occupied_bins(), rep.binned.bins());
  std::printf("%s", rep.binned.ascii(32, 60).c_str());
}

}  // namespace

int main() {
  obs::BenchReport report("fig3_completion_times");
  const bench::ScaleProfile profile = bench::scale_profile();
  // The planner at P=1024 is a one-time design step; the fast profile uses
  // P=256 to keep the bench snappy (the histogram structure is identical).
  const int p = profile.name == "full" ? 1024 : 256;
  const std::size_t n = profile.histogram_encryptions;
  report.seed(1);  // planner seed of both M=3 planners below
  report.note("profile", profile.name);
  report.metric("p_configs", p);
  bench::print_header("Fig. 3 — completion-time histograms (" +
                      std::to_string(n) + " encryptions, P=" +
                      std::to_string(p) + ")");

  // (a) Unprotected, 48 MHz.
  sched::FixedClockScheduler unprot(48.0);
  const HistReport a = run_histogram(unprot, n);
  print_report("Fig. 3-a  unprotected AES @ 48 MHz", a);
  std::printf("  -> paper: single spike at 208.33 ns; measured spike at "
              "%.2f ns with %zu distinct value(s)\n",
              to_ns(a.min_ps), a.exact.distinct());

  // (b) RFTC(3, P) without the overlap check: consecutive 0.012 MHz grid
  // triples, the paper's "without carefully choosing random frequencies".
  core::PlannerParams naive;
  naive.m_outputs = 3;
  naive.p_configs = p;
  naive.avoid_overlaps = false;
  naive.naive_grid_partition = true;
  // Cover the whole 12-48 MHz band with P x 3 consecutive frequencies, as
  // the paper's 3,072-frequency grid does at P=1024.
  naive.grid_step_mhz = (naive.f_max_mhz - naive.f_min_mhz) /
                        static_cast<double>(3 * p);
  naive.seed = 1;
  core::ControllerParams cp;
  core::RftcController ctrl_naive(core::plan_frequencies(naive), cp);
  const HistReport b = run_histogram(ctrl_naive, n);
  print_report("Fig. 3-b  RFTC(3, P) naive frequency choice", b);

  // (c) RFTC(3, P) with carefully chosen (overlap-free) frequencies.
  core::PlannerParams careful;
  careful.m_outputs = 3;
  careful.p_configs = p;
  careful.avoid_overlaps = true;
  careful.seed = 1;
  const core::FrequencyPlan plan = core::plan_frequencies(careful);
  core::RftcController ctrl_careful(plan, cp);
  const HistReport c = run_histogram(ctrl_careful, n);
  print_report("Fig. 3-c  RFTC(3, P) overlap-free frequency choice", c);
  std::printf("  planner rejected sets  : %llu\n",
              static_cast<unsigned long long>(plan.rejected_sets));
  std::printf("  plan completion times  : %llu (paper: 67,584 at P=1024)\n",
              static_cast<unsigned long long>(plan.total_completion_times()));

  // Headline comparisons.
  std::printf("\nSummary (paper -> measured):\n");
  std::printf("  (a) distinct completions: 1 -> %zu\n", a.exact.distinct());
  std::printf("  (b) max identical count : high peaks -> %llu\n",
              static_cast<unsigned long long>(b.exact.max_multiplicity()));
  std::printf("  (c) max identical count : <130 per 1M -> %llu per %zu\n",
              static_cast<unsigned long long>(c.exact.max_multiplicity()),
              static_cast<std::size_t>(n));
  std::printf("  peak concentration (max bin / mean bin): (b) %.1fx vs (c) "
              "%.1fx\n",
              static_cast<double>(b.binned.max_count()) *
                  static_cast<double>(b.binned.occupied_bins()) /
                  static_cast<double>(b.binned.total()),
              static_cast<double>(c.binned.max_count()) *
                  static_cast<double>(c.binned.occupied_bins()) /
                  static_cast<double>(c.binned.total()));

  report.metric("unprotected.distinct_completions",
                static_cast<double>(a.exact.distinct()));
  report.metric("naive.max_identical",
                static_cast<double>(b.exact.max_multiplicity()));
  report.metric("careful.distinct_completions",
                static_cast<double>(c.exact.distinct()));
  report.metric("careful.max_identical",
                static_cast<double>(c.exact.max_multiplicity()));
  report.metric("careful.plan_completion_times",
                static_cast<double>(plan.total_completion_times()),
                "paper: 67,584 at P=1024");
  report.throughput(static_cast<double>(3 * n) / report.elapsed_seconds(),
                    "encryptions/s");
  report.write();
  return 0;
}
