// §7 baseline reproduction: the unprotected AES core [11] is broken by CPA,
// PCA-CPA and DTW-CPA in ~2,000 encryptions and by FFT-CPA in ~8,000
// (paper's absolute numbers; our trace axis is scaled by the factor
// recorded in EXPERIMENTS.md, so the shape to check is CPA/PCA/DTW breaking
// several times earlier than FFT).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rftc;
  obs::BenchReport report("unprotected_baseline");
  bench::ScaleProfile profile = bench::scale_profile();
  // The unprotected core breaks quickly: finer checkpoints at the low end.
  profile.sr_checkpoints = {50, 100, 200, 400, 800, 1'600, 3'200};
  report.seed(0xC000);  // unprotected_factory campaign seed base
  report.note("profile", profile.name);
  bench::print_header("§7 — unprotected AES baseline, profile " +
                      profile.name);
  const bench::AttackSuiteResult r = bench::run_attack_suite(
      "Unprotected AES @ 48 MHz", bench::unprotected_factory(), profile);
  bench::record_suite(report, "unprotected", r);
  std::printf(
      "\nExpected (paper, unscaled): ~2,000 traces for CPA/PCA-CPA/DTW-CPA; "
      "~8,000 for FFT-CPA.\n");
  bench::finish_capture_bench(report);
  return 0;
}
