// Fig. 4 reproduction: success rates of CPA, PCA-CPA, DTW-CPA and FFT-CPA
// against RFTC(1, P) for P in {4, 16, 64, 256, 1024}.
//
// Paper shape to reproduce (trace axis scaled, see EXPERIMENTS.md):
//  * CPA / PCA-CPA break RFTC(1, 4) but fail for P >= 16;
//  * DTW-CPA breaks P in {4, 16, 64} quickly, P = 256 late, P = 1024 never;
//  * FFT-CPA breaks P in {4, 16} and fails beyond.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rftc;
  obs::BenchReport report("fig4_m1_attacks");
  const bench::ScaleProfile profile = bench::scale_profile();
  report.note("profile", profile.name);
  report.seed(0x5EED0000);  // rftc_factory campaign seed base
  bench::print_header("Fig. 4 — attacks on RFTC(1, P), profile " +
                      profile.name);
  for (const int p : {4, 16, 64, 256, 1024}) {
    const bench::AttackSuiteResult r =
        bench::run_attack_suite("RFTC(1, " + std::to_string(p) + ")",
                                bench::rftc_factory(1, p), profile);
    bench::record_suite(report, "rftc_1_" + std::to_string(p), r);
  }
  std::printf(
      "\nExpected ordering (paper): security increases with P; DTW-CPA is "
      "the strongest preprocessing, breaking up to P=256; P=1024 resists "
      "all four attacks.\n");
  bench::finish_capture_bench(report);
  return 0;
}
