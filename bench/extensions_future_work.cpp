// §8 future-work reproductions, beyond the paper's own evaluation:
//  * Sliding-Window CPA [8] against RFTC — the attack the authors propose
//    to test next.  Windowed integration absorbs small clock jitter, so it
//    should sit between plain CPA and DTW-CPA in strength.
//  * Altera/Intel IOPLL portability — §8 argues RFTC "can be implemented on
//    Altera FPGAs as well"; here the whole pipeline (planner -> ping-pong
//    controller -> attack campaign) runs under IOPLL electrical limits
//    (wider VCO band, integer-only output counters).
#include <cstdio>

#include "analysis/tvla.hpp"
#include "common.hpp"
#include "rftc/device.hpp"

namespace {

using namespace rftc;

/// Returns the first checkpoint where SW-CPA recovered the key (0 = never).
std::size_t sw_cpa_suite(const std::string& label,
                         const analysis::CampaignFactory& factory,
                         const bench::ScaleProfile& profile) {
  const aes::Block rk10 = bench::evaluation_round10_key();
  std::printf("%-18s", label.c_str());
  const trace::TraceSet set = factory(0, profile.sr_max_traces);
  analysis::AttackParams attack;
  attack.kind = analysis::AttackKind::kSwCpa;
  attack.byte_positions = profile.attack_bytes;
  attack.checkpoints = profile.sr_checkpoints;
  const analysis::AttackOutcome out = analysis::run_attack(set, rk10, attack);
  for (std::size_t i = 0; i < out.checkpoints.size(); ++i)
    std::printf(" %6zu:%d", out.checkpoints[i], out.success[i] ? 1 : 0);
  if (out.first_success() != 0) {
    std::printf("   BROKEN @ %zu\n", out.first_success());
  } else {
    std::printf("   not broken (mean rank %.1f)\n", out.mean_rank.back());
  }
  std::fflush(stdout);
  return out.first_success();
}

}  // namespace

int main() {
  obs::BenchReport report("extensions_future_work");
  const bench::ScaleProfile profile = bench::scale_profile();
  report.note("profile", profile.name);
  report.seed(77);  // planner seed; captures derive from 405
  bench::print_header("Extensions — §8 future work, profile " + profile.name);

  std::printf("\n[1] Sliding-Window CPA [8] (checkpoint:success)\n");
  report.metric(
      "swcpa.unprotected_break",
      static_cast<double>(
          sw_cpa_suite("Unprotected", bench::unprotected_factory(), profile)),
      "traces");
  report.metric(
      "swcpa.rftc_1_4_break",
      static_cast<double>(
          sw_cpa_suite("RFTC(1, 4)", bench::rftc_factory(1, 4), profile)),
      "traces");
  report.metric("swcpa.rftc_1_1024_break",
                static_cast<double>(sw_cpa_suite(
                    "RFTC(1, 1024)", bench::rftc_factory(1, 1024), profile)),
                "traces");
  report.metric("swcpa.rftc_3_1024_break",
                static_cast<double>(sw_cpa_suite(
                    "RFTC(3, 1024)", bench::rftc_factory(3, 1024), profile)),
                "traces");

  std::printf("\n[2] RFTC on an Altera/Intel IOPLL (§8 portability)\n");
  core::PlannerParams pp;
  pp.m_outputs = 3;
  pp.p_configs = 64;
  pp.limits = clk::altera_iopll_limits();
  pp.seed = 77;
  const core::FrequencyPlan plan = core::plan_frequencies(pp);
  std::printf("    planned %zu overlap-free sets, %zu distinct frequencies, "
              "%llu rejected candidates\n",
              plan.p(), plan.distinct_frequencies(),
              static_cast<unsigned long long>(plan.rejected_sets));
  core::RftcDevice dev(bench::evaluation_key(), plan, {});
  trace::PowerModelParams pm;
  trace::TraceSimulator sim(pm, 404);
  Xoshiro256StarStar rng(405);
  aes::Block fixed{};
  fixed[0] = 0x3C;
  const trace::TvlaCapture cap = trace::acquire_tvla(
      [&](const aes::Block& pt) { return dev.encrypt(pt); }, sim,
      profile.tvla_traces / 2, fixed, rng);
  const analysis::TvlaResult tv = analysis::run_tvla(cap);
  std::printf("    IOPLL RFTC(3, 64) TVLA max|t| = %.2f (%s), ciphertexts "
              "verified: %s\n",
              tv.max_abs_t, tv.max_abs_t < 10 ? "low leakage" : "leaking",
              aes::encrypt(cap.fixed.plaintext(0), bench::evaluation_key()) ==
                      cap.fixed.ciphertext(0)
                  ? "yes"
                  : "NO");
  report.metric("iopll.tvla_max_abs_t", tv.max_abs_t, "|t|");
  report.metric("iopll.distinct_frequencies",
                static_cast<double>(plan.distinct_frequencies()));
  bench::finish_capture_bench(report);
  return 0;
}
