// rftc-trace: inspect and check the chunked trace stores (.rtst) the
// out-of-core pipeline produces (see src/trace/trace_store.hpp for the
// format).
//
//   rftc-trace info <store.rtst>
//       Prints the header: schema, traces, samples per trace, chunk
//       geometry and file size.  Exits 1 if the file does not open as a
//       store (bad magic, bad header CRC, truncated, unfinalized).
//
//   rftc-trace verify <store.rtst>...
//       info plus a full payload sweep: every chunk is mapped and its
//       CRC-32 recomputed.  Exits 1 on the first store with a mismatch —
//       the post-campaign integrity gate CI runs on out-of-core corpora.
//
// Exit codes: 0 = OK, 1 = invalid or corrupt store, 2 = usage error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "trace/trace_store.hpp"

namespace {

void print_info(const rftc::trace::TraceStore& store) {
  std::printf("%s\n", store.path().c_str());
  std::printf("  schema        %u\n", rftc::trace::kStoreSchema);
  std::printf("  traces        %zu\n", store.size());
  std::printf("  samples/trace %zu\n", store.samples());
  std::printf("  chunk traces  %zu\n", store.chunk_traces());
  std::printf("  chunks        %zu\n", store.chunk_count());
  std::printf("  file bytes    %llu (%.1f MiB)\n",
              static_cast<unsigned long long>(store.file_bytes()),
              static_cast<double>(store.file_bytes()) / (1024.0 * 1024.0));
}

int run_one(const char* path, bool verify) {
  try {
    const rftc::trace::TraceStore store{std::string(path)};
    print_info(store);
    if (verify) {
      const rftc::trace::StoreVerifyResult v = store.verify();
      if (!v.ok) {
        std::fprintf(stderr, "rftc-trace: %s: %s\n", path, v.error.c_str());
        return 1;
      }
      std::printf("  verify        OK (%zu chunks, payload CRCs match)\n",
                  v.chunks_checked);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rftc-trace: %s: %s\n", path, e.what());
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr, "usage: rftc-trace info|verify <store.rtst>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const bool verify = std::strcmp(argv[1], "verify") == 0;
  if (!verify && std::strcmp(argv[1], "info") != 0) return usage();
  for (int i = 2; i < argc; ++i) {
    const int rc = run_one(argv[i], verify);
    if (rc != 0) return rc;
  }
  return 0;
}
