// rftc-trace: inspect and check the chunked trace stores (.rtst) the
// out-of-core pipeline produces (see src/trace/trace_store.hpp for the
// format).
//
//   rftc-trace info [--json] <store.rtst>...
//       Prints the header: schema, traces, samples per trace, chunk
//       geometry and file size.  Exits 1 if a file does not open as a
//       store (bad magic, bad header CRC, truncated, unfinalized).
//
//   rftc-trace verify [--json] <store.rtst>...
//       info plus a full payload sweep: every chunk is mapped and its
//       CRC-32 recomputed.  Each mismatching chunk is reported with its
//       index, absolute byte offset and expected/actual CRC-32 so the
//       corruption can be located with dd/xxd.  Exits 1 when any store
//       fails — the post-campaign integrity gate CI runs on out-of-core
//       corpora.  All stores are processed even after a failure.
//
//   --json emits one JSON object per store (JSONL) instead of the table,
//   for scripted consumers; open errors become {"path":...,"error":...}.
//
// Exit codes: 0 = OK, 1 = invalid or corrupt store, 2 = usage error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "obs/json.hpp"
#include "trace/trace_store.hpp"

namespace {

void print_info(const rftc::trace::TraceStore& store) {
  std::printf("%s\n", store.path().c_str());
  std::printf("  schema        %u\n", rftc::trace::kStoreSchema);
  std::printf("  traces        %zu\n", store.size());
  std::printf("  samples/trace %zu\n", store.samples());
  std::printf("  chunk traces  %zu\n", store.chunk_traces());
  std::printf("  chunks        %zu\n", store.chunk_count());
  std::printf("  file bytes    %llu (%.1f MiB)\n",
              static_cast<unsigned long long>(store.file_bytes()),
              static_cast<double>(store.file_bytes()) / (1024.0 * 1024.0));
}

void print_failure(const rftc::trace::StoreChunkFailure& f) {
  std::fprintf(stderr,
               "  chunk %zu CRC mismatch at byte offset %llu: "
               "expected %08x, got %08x\n",
               f.chunk, static_cast<unsigned long long>(f.byte_offset),
               f.expected_crc, f.actual_crc);
}

std::string json_failures(const rftc::trace::StoreVerifyResult& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.failures.size(); ++i) {
    const auto& f = v.failures[i];
    char crc[32];
    if (i > 0) out += ',';
    out += "{\"chunk\": " + std::to_string(f.chunk) +
           ", \"byte_offset\": " + std::to_string(f.byte_offset);
    std::snprintf(crc, sizeof crc, "\"%08x\"", f.expected_crc);
    out += std::string(", \"expected_crc\": ") + crc;
    std::snprintf(crc, sizeof crc, "\"%08x\"", f.actual_crc);
    out += std::string(", \"actual_crc\": ") + crc + "}";
  }
  return out + "]";
}

int run_one(const char* path, bool verify, bool json) {
  namespace json_fmt = rftc::obs::json;
  try {
    const rftc::trace::TraceStore store{std::string(path)};
    rftc::trace::StoreVerifyResult v;
    if (verify) v = store.verify();
    if (json) {
      std::string line = "{\"path\": " + json_fmt::quote(store.path()) +
                         ", \"schema\": " +
                         std::to_string(rftc::trace::kStoreSchema) +
                         ", \"traces\": " + std::to_string(store.size()) +
                         ", \"samples\": " + std::to_string(store.samples()) +
                         ", \"chunk_traces\": " +
                         std::to_string(store.chunk_traces()) +
                         ", \"chunks\": " + std::to_string(store.chunk_count()) +
                         ", \"file_bytes\": " +
                         std::to_string(store.file_bytes());
      if (verify)
        line += std::string(", \"verify\": {\"ok\": ") +
                (v.ok ? "true" : "false") +
                ", \"chunks_checked\": " + std::to_string(v.chunks_checked) +
                ", \"failures\": " + json_failures(v) + "}";
      line += "}";
      std::printf("%s\n", line.c_str());
      if (verify && !v.ok) return 1;
      return 0;
    }
    print_info(store);
    if (verify) {
      if (!v.ok) {
        std::fprintf(stderr, "rftc-trace: %s: %s\n", path, v.error.c_str());
        for (const auto& f : v.failures) print_failure(f);
        return 1;
      }
      std::printf("  verify        OK (%zu chunks, payload CRCs match)\n",
                  v.chunks_checked);
    }
  } catch (const std::exception& e) {
    if (json)
      std::printf("{\"path\": %s, \"error\": %s}\n",
                  json_fmt::quote(path).c_str(),
                  json_fmt::quote(e.what()).c_str());
    else
      std::fprintf(stderr, "rftc-trace: %s: %s\n", path, e.what());
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: rftc-trace info|verify [--json] <store.rtst>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const bool verify = std::strcmp(argv[1], "verify") == 0;
  if (!verify && std::strcmp(argv[1], "info") != 0) return usage();
  bool json = false;
  int first = 2;
  if (std::strcmp(argv[2], "--json") == 0) {
    json = true;
    first = 3;
  }
  if (first >= argc) return usage();
  // Check every store before deciding the exit code: a campaign that wrote
  // several shards wants the full damage report, not the first bad one.
  int rc = 0;
  for (int i = first; i < argc; ++i)
    if (run_one(argv[i], verify, json) != 0) rc = 1;
  return rc;
}
