// rftc-campaign: run an attack or TVLA campaign over chunked trace stores,
// either single-process (the run_attack / run_tvla reference paths) or
// distributed over rftc-worker processes (src/dist) — and write one
// deterministic report.json either way, so CI can diff the two modes
// byte for byte (docs/DISTRIBUTED.md).
//
//   rftc-campaign attack --store <s.rtst> --key <32-hex>
//       [--workers N] [--dir D] [--retries R] [--worker PATH]
//       [--checkpoints a,b,c] [--engine streaming|batched]
//       [--leakage last_round_hd|first_round_hw] [--downsample K]
//       [--bytes i,j,...] [--report PATH]
//
//   rftc-campaign tvla --fixed <f.rtst> --random <r.rtst>
//       [--workers N] [--dir D] [--retries R] [--worker PATH]
//       [--report PATH]
//
// --workers 0 (the default) runs the campaign in-process through the exact
// single-process code paths — the baseline the distributed result must be
// bit-identical to.  --workers N >= 1 requires --dir; the directory is the
// resume token (rerun the same command after a crash and completed shards
// are reused).  --worker overrides the rftc-worker binary (default:
// RFTC_WORKER_BIN, else rftc-worker next to this executable).
//
// The report is strict JSON with shortest-round-trip doubles: identical
// results produce identical bytes.
//
// Exit codes: 0 = OK, 1 = campaign failed, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/attacks.hpp"
#include "analysis/tvla.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "trace/trace_store.hpp"
#include "util/env.hpp"

namespace {

using namespace rftc;

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "rftc-campaign: %s\n", why);
  std::fprintf(stderr,
               "usage: rftc-campaign attack --store <s.rtst> --key <32-hex> "
               "[--workers N] [--dir D] ...\n"
               "       rftc-campaign tvla --fixed <f.rtst> --random <r.rtst> "
               "[--workers N] [--dir D] ...\n");
  std::exit(2);
}

std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto v = env::parse_u64(item);
    if (!v) usage(("bad number in list: " + item).c_str());
    out.push_back(static_cast<std::size_t>(*v));
  }
  return out;
}

std::string attack_report_json(const analysis::AttackOutcome& out) {
  std::ostringstream os;
  os << "{\"kind\":\"attack\",\"checkpoints\":[";
  for (std::size_t i = 0; i < out.checkpoints.size(); ++i)
    os << (i ? "," : "") << out.checkpoints[i];
  os << "],\"success\":[";
  for (std::size_t i = 0; i < out.success.size(); ++i)
    os << (i ? "," : "") << (out.success[i] ? "true" : "false");
  os << "],\"mean_rank\":[";
  for (std::size_t i = 0; i < out.mean_rank.size(); ++i)
    os << (i ? "," : "") << obs::json::number(out.mean_rank[i]);
  os << "],\"peak_corr\":[";
  for (std::size_t i = 0; i < out.peak_corr.size(); ++i)
    os << (i ? "," : "") << obs::json::number(out.peak_corr[i]);
  os << "]}\n";
  return os.str();
}

std::string tvla_report_json(const analysis::TvlaResult& res) {
  std::ostringstream os;
  os << "{\"kind\":\"tvla\",\"max_abs_t\":" << obs::json::number(res.max_abs_t)
     << ",\"worst_sample\":" << res.worst_sample
     << ",\"leaking_samples\":" << res.leaking_samples << ",\"convergence\":[";
  for (std::size_t i = 0; i < res.convergence.size(); ++i)
    os << (i ? "," : "") << "[" << res.convergence[i].first << ","
       << obs::json::number(res.convergence[i].second) << "]";
  os << "],\"t_values\":[";
  for (std::size_t i = 0; i < res.t_values.size(); ++i)
    os << (i ? "," : "") << obs::json::number(res.t_values[i]);
  os << "]}\n";
  return os.str();
}

struct Cli {
  dist::CampaignSpec spec;
  dist::CoordinatorOptions options;
  std::size_t workers = 0;  // 0 = single-process baseline
  std::string report;
};

Cli parse_cli(int argc, char** argv) {
  if (argc < 2) usage("missing subcommand");
  Cli cli;
  const std::string sub = argv[1];
  if (sub == "attack")
    cli.spec.kind = dist::CampaignKind::kAttack;
  else if (sub == "tvla")
    cli.spec.kind = dist::CampaignKind::kTvla;
  else
    usage(("unknown subcommand: " + sub).c_str());
  cli.spec.name = sub;
  cli.options.retries = 1;

  const auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) usage((std::string(argv[i]) + " needs a value").c_str());
    return argv[i + 1];
  };
  for (int i = 2; i < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = need(i);
    if (flag == "--store") {
      cli.spec.store = value;
    } else if (flag == "--key") {
      cli.spec.key_hex = value;
    } else if (flag == "--fixed") {
      cli.spec.fixed_store = value;
    } else if (flag == "--random") {
      cli.spec.random_store = value;
    } else if (flag == "--workers") {
      const auto v = env::parse_u64(value);
      if (!v) usage("--workers needs a non-negative integer");
      cli.workers = static_cast<std::size_t>(*v);
    } else if (flag == "--dir") {
      cli.options.dir = value;
    } else if (flag == "--retries") {
      const auto v = env::parse_u64(value);
      if (!v) usage("--retries needs a non-negative integer");
      cli.options.retries = static_cast<std::size_t>(*v);
    } else if (flag == "--worker") {
      cli.options.worker_binary = value;
    } else if (flag == "--checkpoints") {
      cli.spec.checkpoints = parse_size_list(value);
    } else if (flag == "--bytes") {
      for (const std::size_t b : parse_size_list(value)) {
        if (b > 15) usage("--bytes entries must be in [0, 15]");
        cli.spec.byte_positions.push_back(static_cast<int>(b));
      }
    } else if (flag == "--engine") {
      if (value == "streaming")
        cli.spec.engine_mode = analysis::CpaMode::kStreaming;
      else if (value == "batched")
        cli.spec.engine_mode = analysis::CpaMode::kBatched;
      else
        usage("--engine must be streaming or batched");
    } else if (flag == "--leakage") {
      if (value == "last_round_hd")
        cli.spec.leakage = aes::LeakageModel::kLastRoundHd;
      else if (value == "first_round_hw")
        cli.spec.leakage = aes::LeakageModel::kFirstRoundHw;
      else
        usage("--leakage must be last_round_hd or first_round_hw");
    } else if (flag == "--downsample") {
      const auto v = env::parse_u64(value);
      if (!v || *v == 0) usage("--downsample needs a positive integer");
      cli.spec.downsample = static_cast<std::size_t>(*v);
    } else if (flag == "--report") {
      cli.report = value;
    } else {
      usage(("unknown flag: " + flag).c_str());
    }
  }

  if (cli.spec.kind == dist::CampaignKind::kAttack) {
    if (cli.spec.store.empty()) usage("attack needs --store");
    if (cli.spec.key_hex.empty()) usage("attack needs --key");
    try {
      (void)cli.spec.key();
    } catch (const std::exception& e) {
      usage(e.what());
    }
  } else {
    if (cli.spec.fixed_store.empty() || cli.spec.random_store.empty())
      usage("tvla needs --fixed and --random");
  }
  if (cli.workers > 0 && cli.options.dir.empty())
    usage("--workers N >= 1 needs --dir");
  if (cli.report.empty())
    cli.report =
        cli.options.dir.empty() ? "report.json" : cli.options.dir + "/report.json";
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  const Cli cli = parse_cli(argc, argv);
  try {
    std::string report;
    if (cli.workers == 0) {
      // Single-process baseline through the reference code paths.
      if (cli.spec.kind == dist::CampaignKind::kAttack) {
        const trace::TraceStore store(cli.spec.store);
        const analysis::AttackOutcome out =
            analysis::run_attack(store, cli.spec.key(), cli.spec.attack_params());
        report = attack_report_json(out);
      } else {
        trace::StoredTvlaCapture capture{
            trace::TraceStore(cli.spec.fixed_store),
            trace::TraceStore(cli.spec.random_store)};
        const analysis::TvlaResult res = analysis::run_tvla(capture);
        report = tvla_report_json(res);
      }
    } else {
      dist::CoordinatorOptions options = cli.options;
      options.workers = cli.workers;
      const dist::CampaignResult result = dist::run_campaign(cli.spec, options);
      std::fprintf(stderr,
                   "rftc-campaign: %zu shards (%zu reused, %zu restarts)\n",
                   result.shards_total, result.shards_reused,
                   result.worker_restarts);
      report = cli.spec.kind == dist::CampaignKind::kAttack
                   ? attack_report_json(result.attack)
                   : tvla_report_json(result.tvla);
    }
    dist::write_file_atomic(cli.report, report);
    std::printf("%s", report.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rftc-campaign: %s\n", e.what());
    return 1;
  }
  return 0;
}
