// rftc-worker: executes one shard task file of a distributed campaign (see
// src/dist/protocol.hpp and docs/DISTRIBUTED.md).  Spawned by the
// coordinator (rftc-campaign or rftc::dist::run_campaign); not normally run
// by hand, but doing so is harmless — the task file is self-contained and
// re-running a shard rewrites identical artifacts.
//
//   rftc-worker <shard.task.json>
//
// Observability sinks (heartbeat, post-mortem, logs) come from the
// RFTC_OBS_* / RFTC_LOG_* environment the coordinator sets per shard.
//
// Exit codes: 0 = shard durable, 1 = any failure, 2 = usage error.
#include <cstdio>
#include <exception>

#include "dist/worker.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  rftc::obs::init_from_env();
  if (argc != 2) {
    std::fprintf(stderr, "usage: rftc-worker <shard.task.json>\n");
    return 2;
  }
  try {
    rftc::dist::run_worker_task(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rftc-worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
