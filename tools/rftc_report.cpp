// rftc-report: inspect and gate the observability artifacts every bench and
// example emits (BENCH_<name>.json reports and runs/<name>.jsonl run
// manifests).
//
//   rftc-report show <file>
//       Pretty-prints one artifact: provenance, final metrics, and (for
//       manifests) the checkpoint streams.
//
//   rftc-report diff <candidate> <baseline> [options]
//       Compares two artifacts (either format) and exits 1 when the
//       candidate regresses beyond tolerance — the perf/security gate CI
//       runs against committed baselines.  Value metrics are compared by
//       relative drift; timing metrics (unit s/ms/us/ns or a rate, plus
//       wall_seconds) only by ratio, because they are machine-dependent;
//       count metrics (unit "count" — seeded deterministic tallies such as
//       fault-campaign event counts) must match exactly.
//
//       --tol <x>             relative drift allowed on value metrics
//                             (default 0.05)
//       --timing-factor <x>   allowed ratio on timing metrics (default 3)
//       --metric-tol k=<x>    per-metric override (value-class comparison;
//                             also relaxes a count metric)
//       --ignore <key>        exclude a key ("threads"/"batch" are always
//                             excluded)
//       --allow-missing       keys missing from the candidate only warn
//
//   rftc-report tail <heartbeat.jsonl> [-n N]
//       Renders the last N (default 10) heartbeat snapshots of a live (or
//       crashed) campaign as a fixed-width table.  Exits 1 when the file
//       contains no parseable snapshot line.
//
//   rftc-report watch <heartbeat.jsonl> [--interval-ms M] [--timeout-s S]
//       Follow mode: prints each new snapshot as the campaign appends it
//       (like tail -f), polling every M ms (default 500).  Stops when no
//       new line arrives for S seconds (default: run until interrupted).
//
// Exit codes: 0 = no drift beyond tolerance / snapshots rendered,
// 1 = regression or no valid heartbeat line, 2 = usage or I/O error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/report_diff.hpp"
#include "obs/sampler.hpp"

namespace {

using rftc::obs::Artifact;
using rftc::obs::DiffOptions;
using rftc::obs::DiffResult;

int usage() {
  std::fprintf(stderr,
               "usage: rftc-report show <file>\n"
               "       rftc-report diff <candidate> <baseline> [--tol x]\n"
               "           [--timing-factor x] [--metric-tol key=x]\n"
               "           [--ignore key] [--allow-missing]\n"
               "       rftc-report tail <heartbeat.jsonl> [-n N]\n"
               "       rftc-report watch <heartbeat.jsonl>"
               " [--interval-ms M] [--timeout-s S]\n");
  return 2;
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rftc-report: cannot read %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool load_artifact(const char* path, Artifact& art) {
  std::string text;
  if (!read_file(path, text)) return false;
  try {
    art = rftc::obs::parse_artifact(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rftc-report: %s: %s\n", path, e.what());
    return false;
  }
  return true;
}

int cmd_show(const char* path) {
  Artifact art;
  if (!load_artifact(path, art)) return 2;
  std::printf("%s (%s artifact)\n", art.name.c_str(), art.format.c_str());
  if (!art.provenance.empty()) {
    std::printf("\nprovenance:\n");
    for (const auto& [k, v] : art.provenance)
      std::printf("  %-14s %s\n", k.c_str(), v.c_str());
  }
  if (!art.metrics.empty()) {
    std::printf("\nmetrics:\n");
    for (const auto& [k, m] : art.metrics)
      std::printf("  %-38s %14.6g %s\n", k.c_str(), m.value, m.unit.c_str());
  }
  if (!art.checkpoints.empty()) {
    std::printf("\ncheckpoints:\n");
    for (const auto& [cp, values] : art.checkpoints) {
      std::printf("  %s:", cp.c_str());
      for (const auto& [k, v] : values) std::printf(" %s=%.6g", k.c_str(), v);
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 2) return usage();
  DiffOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" && i + 1 < argc) {
      options.tolerance = std::atof(argv[++i]);
    } else if (arg == "--timing-factor" && i + 1 < argc) {
      options.timing_factor = std::atof(argv[++i]);
    } else if (arg == "--metric-tol" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage();
      options.per_metric[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (arg == "--ignore" && i + 1 < argc) {
      options.ignore.emplace_back(argv[++i]);
    } else if (arg == "--allow-missing") {
      options.fail_on_missing = false;
    } else {
      return usage();
    }
  }

  Artifact candidate, baseline;
  if (!load_artifact(argv[0], candidate) || !load_artifact(argv[1], baseline))
    return 2;
  const DiffResult res =
      rftc::obs::diff_artifacts(candidate, baseline, options);
  for (const std::string& note : res.notes)
    std::printf("  note: %s\n", note.c_str());
  for (const std::string& failure : res.failures)
    std::printf("  FAIL: %s\n", failure.c_str());
  std::printf("%s: %zu comparisons, %zu failed (%s vs %s)\n",
              res.regression ? "REGRESSION" : "OK", res.compared,
              res.failures.size(), argv[0], argv[1]);
  return res.regression ? 1 : 0;
}

using rftc::obs::HeartbeatSnapshot;

int cmd_tail(int argc, char** argv) {
  std::size_t n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage();
      n = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  std::ifstream in(argv[0]);
  if (!in) {
    std::fprintf(stderr, "rftc-report: cannot read %s\n", argv[0]);
    return 2;
  }
  // Keep one extra snapshot in front so the oldest printed row still shows
  // its convergence delta.
  std::deque<HeartbeatSnapshot> last;
  std::string line;
  while (std::getline(in, line)) {
    HeartbeatSnapshot snap;
    if (!rftc::obs::parse_heartbeat_line(line, snap)) continue;
    last.push_back(std::move(snap));
    if (last.size() > n + 1) last.pop_front();
  }
  if (last.empty()) {
    std::fprintf(stderr, "rftc-report: %s: no heartbeat snapshots\n", argv[0]);
    return 1;
  }
  std::printf("%s\n", rftc::obs::heartbeat_header_row().c_str());
  for (std::size_t i = last.size() > n ? 1 : 0; i < last.size(); ++i)
    std::printf("%s\n",
                rftc::obs::format_heartbeat_row(last[i],
                                                i > 0 ? &last[i - 1] : nullptr)
                    .c_str());
  return 0;
}

int cmd_watch(int argc, char** argv) {
  auto poll = std::chrono::milliseconds(500);
  double timeout_s = -1.0;  // run until interrupted
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage();
      poll = std::chrono::milliseconds(v);
    } else if (std::strcmp(argv[i], "--timeout-s") == 0 && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
      if (timeout_s <= 0.0) return usage();
    } else {
      return usage();
    }
  }
  // Follow by byte offset so each poll only reads what the campaign
  // appended since the last one; a heartbeat line is fsynced whole, so a
  // partial trailing line never parses and is retried next poll.
  std::printf("%s\n", rftc::obs::heartbeat_header_row().c_str());
  std::fflush(stdout);
  std::string buffered;
  std::streamoff offset = 0;
  bool have_prev = false;
  HeartbeatSnapshot prev;
  std::size_t printed = 0;
  auto last_new = std::chrono::steady_clock::now();
  for (;;) {
    std::ifstream in(argv[0], std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      const std::streamoff size = in.tellg();
      if (size < offset) {  // truncated/rotated: start over
        offset = 0;
        buffered.clear();
      }
      if (size > offset) {
        in.seekg(offset);
        std::string chunk(static_cast<std::size_t>(size - offset), '\0');
        in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        offset += in.gcount();
        buffered.append(chunk, 0, static_cast<std::size_t>(in.gcount()));
        std::size_t eol;
        while ((eol = buffered.find('\n')) != std::string::npos) {
          HeartbeatSnapshot snap;
          if (rftc::obs::parse_heartbeat_line(
                  std::string_view(buffered).substr(0, eol), snap)) {
            std::printf("%s\n",
                        rftc::obs::format_heartbeat_row(
                            snap, have_prev ? &prev : nullptr)
                            .c_str());
            std::fflush(stdout);
            prev = std::move(snap);
            have_prev = true;
            ++printed;
            last_new = std::chrono::steady_clock::now();
          }
          buffered.erase(0, eol + 1);
        }
      }
    }
    if (timeout_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_new)
                .count() > timeout_s)
      break;
    std::this_thread::sleep_for(poll);
  }
  if (printed == 0) {
    std::fprintf(stderr, "rftc-report: %s: no heartbeat snapshots\n", argv[0]);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  if (std::strcmp(argv[1], "show") == 0 && argc == 3)
    return cmd_show(argv[2]);
  if (std::strcmp(argv[1], "diff") == 0)
    return cmd_diff(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "tail") == 0)
    return cmd_tail(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "watch") == 0)
    return cmd_watch(argc - 2, argv + 2);
  return usage();
}
