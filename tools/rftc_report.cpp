// rftc-report: inspect and gate the observability artifacts every bench and
// example emits (BENCH_<name>.json reports and runs/<name>.jsonl run
// manifests).
//
//   rftc-report show <file>
//       Pretty-prints one artifact: provenance, final metrics, and (for
//       manifests) the checkpoint streams.
//
//   rftc-report diff <candidate> <baseline> [options]
//       Compares two artifacts (either format) and exits 1 when the
//       candidate regresses beyond tolerance — the perf/security gate CI
//       runs against committed baselines.  Value metrics are compared by
//       relative drift; timing metrics (unit s/ms/us/ns or a rate, plus
//       wall_seconds) only by ratio, because they are machine-dependent;
//       count metrics (unit "count" — seeded deterministic tallies such as
//       fault-campaign event counts) must match exactly.
//
//       --tol <x>             relative drift allowed on value metrics
//                             (default 0.05)
//       --timing-factor <x>   allowed ratio on timing metrics (default 3)
//       --metric-tol k=<x>    per-metric override (value-class comparison;
//                             also relaxes a count metric)
//       --ignore <key>        exclude a key ("threads"/"batch" are always
//                             excluded)
//       --allow-missing       keys missing from the candidate only warn
//
//   rftc-report tail <heartbeat.jsonl> [-n N]
//       Renders the last N (default 10) heartbeat snapshots of a live (or
//       crashed) campaign as a fixed-width table.  Exits 1 when the file
//       contains no parseable snapshot line.
//
//   rftc-report watch <heartbeat.jsonl> [--interval-ms M] [--timeout-s S]
//       Follow mode: prints each new snapshot as the campaign appends it
//       (like tail -f), polling every M ms (default 500).  Stops when no
//       new line arrives for S seconds (default: run until interrupted).
//
//   rftc-report postmortem <postmortem.json>
//       Renders a crash bundle (obs/postmortem.hpp): reason, active phase,
//       provenance, tracer/drop tallies, last heartbeat, metric registry,
//       and the flight-recorder tail.  Exits 1 when the file is not a
//       post-mortem bundle this build understands.
//
// Exit codes: 0 = no drift beyond tolerance / snapshots rendered,
// 1 = regression, no valid heartbeat line, or not a bundle,
// 2 = usage or I/O error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/postmortem.hpp"
#include "obs/report_diff.hpp"
#include "obs/sampler.hpp"

namespace {

using rftc::obs::Artifact;
using rftc::obs::DiffOptions;
using rftc::obs::DiffResult;

int usage() {
  std::fprintf(stderr,
               "usage: rftc-report show <file>\n"
               "       rftc-report diff <candidate> <baseline> [--tol x]\n"
               "           [--timing-factor x] [--metric-tol key=x]\n"
               "           [--ignore key] [--allow-missing]\n"
               "       rftc-report tail <heartbeat.jsonl> [-n N]\n"
               "       rftc-report watch <heartbeat.jsonl>"
               " [--interval-ms M] [--timeout-s S]\n"
               "       rftc-report postmortem <postmortem.json>\n");
  return 2;
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rftc-report: cannot read %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool load_artifact(const char* path, Artifact& art) {
  std::string text;
  if (!read_file(path, text)) return false;
  try {
    art = rftc::obs::parse_artifact(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rftc-report: %s: %s\n", path, e.what());
    return false;
  }
  return true;
}

int cmd_show(const char* path) {
  Artifact art;
  if (!load_artifact(path, art)) return 2;
  std::printf("%s (%s artifact)\n", art.name.c_str(), art.format.c_str());
  if (!art.provenance.empty()) {
    std::printf("\nprovenance:\n");
    for (const auto& [k, v] : art.provenance)
      std::printf("  %-14s %s\n", k.c_str(), v.c_str());
  }
  if (!art.metrics.empty()) {
    std::printf("\nmetrics:\n");
    for (const auto& [k, m] : art.metrics)
      std::printf("  %-38s %14.6g %s\n", k.c_str(), m.value, m.unit.c_str());
  }
  if (!art.checkpoints.empty()) {
    std::printf("\ncheckpoints:\n");
    for (const auto& [cp, values] : art.checkpoints) {
      std::printf("  %s:", cp.c_str());
      for (const auto& [k, v] : values) std::printf(" %s=%.6g", k.c_str(), v);
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 2) return usage();
  DiffOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" && i + 1 < argc) {
      options.tolerance = std::atof(argv[++i]);
    } else if (arg == "--timing-factor" && i + 1 < argc) {
      options.timing_factor = std::atof(argv[++i]);
    } else if (arg == "--metric-tol" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage();
      options.per_metric[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (arg == "--ignore" && i + 1 < argc) {
      options.ignore.emplace_back(argv[++i]);
    } else if (arg == "--allow-missing") {
      options.fail_on_missing = false;
    } else {
      return usage();
    }
  }

  Artifact candidate, baseline;
  if (!load_artifact(argv[0], candidate) || !load_artifact(argv[1], baseline))
    return 2;
  const DiffResult res =
      rftc::obs::diff_artifacts(candidate, baseline, options);
  for (const std::string& note : res.notes)
    std::printf("  note: %s\n", note.c_str());
  for (const std::string& failure : res.failures)
    std::printf("  FAIL: %s\n", failure.c_str());
  std::printf("%s: %zu comparisons, %zu failed (%s vs %s)\n",
              res.regression ? "REGRESSION" : "OK", res.compared,
              res.failures.size(), argv[0], argv[1]);
  return res.regression ? 1 : 0;
}

using rftc::obs::HeartbeatSnapshot;

int cmd_tail(int argc, char** argv) {
  std::size_t n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage();
      n = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  std::ifstream in(argv[0]);
  if (!in) {
    std::fprintf(stderr, "rftc-report: cannot read %s\n", argv[0]);
    return 2;
  }
  // Keep one extra snapshot in front so the oldest printed row still shows
  // its convergence delta.
  std::deque<HeartbeatSnapshot> last;
  std::string line;
  while (std::getline(in, line)) {
    HeartbeatSnapshot snap;
    if (!rftc::obs::parse_heartbeat_line(line, snap)) continue;
    last.push_back(std::move(snap));
    if (last.size() > n + 1) last.pop_front();
  }
  if (last.empty()) {
    std::fprintf(stderr, "rftc-report: %s: no heartbeat snapshots\n", argv[0]);
    return 1;
  }
  std::printf("%s\n", rftc::obs::heartbeat_header_row().c_str());
  for (std::size_t i = last.size() > n ? 1 : 0; i < last.size(); ++i)
    std::printf("%s\n",
                rftc::obs::format_heartbeat_row(last[i],
                                                i > 0 ? &last[i - 1] : nullptr)
                    .c_str());
  return 0;
}

int cmd_watch(int argc, char** argv) {
  auto poll = std::chrono::milliseconds(500);
  double timeout_s = -1.0;  // run until interrupted
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage();
      poll = std::chrono::milliseconds(v);
    } else if (std::strcmp(argv[i], "--timeout-s") == 0 && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
      if (timeout_s <= 0.0) return usage();
    } else {
      return usage();
    }
  }
  // Follow by byte offset so each poll only reads what the campaign
  // appended since the last one; a heartbeat line is fsynced whole, so a
  // partial trailing line never parses and is retried next poll.
  std::printf("%s\n", rftc::obs::heartbeat_header_row().c_str());
  std::fflush(stdout);
  std::string buffered;
  std::streamoff offset = 0;
  bool have_prev = false;
  HeartbeatSnapshot prev;
  std::size_t printed = 0;
  auto last_new = std::chrono::steady_clock::now();
  for (;;) {
    std::ifstream in(argv[0], std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      const std::streamoff size = in.tellg();
      if (size < offset) {  // truncated/rotated: start over
        offset = 0;
        buffered.clear();
      }
      if (size > offset) {
        in.seekg(offset);
        std::string chunk(static_cast<std::size_t>(size - offset), '\0');
        in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        offset += in.gcount();
        buffered.append(chunk, 0, static_cast<std::size_t>(in.gcount()));
        std::size_t eol;
        while ((eol = buffered.find('\n')) != std::string::npos) {
          HeartbeatSnapshot snap;
          if (rftc::obs::parse_heartbeat_line(
                  std::string_view(buffered).substr(0, eol), snap)) {
            std::printf("%s\n",
                        rftc::obs::format_heartbeat_row(
                            snap, have_prev ? &prev : nullptr)
                            .c_str());
            std::fflush(stdout);
            prev = std::move(snap);
            have_prev = true;
            ++printed;
            last_new = std::chrono::steady_clock::now();
          }
          buffered.erase(0, eol + 1);
        }
      }
    }
    if (timeout_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_new)
                .count() > timeout_s)
      break;
    std::this_thread::sleep_for(poll);
  }
  if (printed == 0) {
    std::fprintf(stderr, "rftc-report: %s: no heartbeat snapshots\n", argv[0]);
    return 1;
  }
  return 0;
}

namespace json = rftc::obs::json;

double pm_num(const json::Value* v, double fallback = 0.0) {
  return v != nullptr && v->is_number() ? v->num : fallback;
}

int cmd_postmortem(const char* path) {
  std::string text;
  if (!read_file(path, text)) return 2;
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rftc-report: %s: %s\n", path, e.what());
    return 1;
  }
  const json::Value* schema = doc.find("postmortem_schema");
  if (schema == nullptr || !schema->is_number() ||
      static_cast<int>(schema->num) != rftc::obs::kPostmortemSchema) {
    std::fprintf(stderr, "rftc-report: %s: not a post-mortem bundle\n", path);
    return 1;
  }

  const json::Value* reason = doc.find("reason");
  const int signo = static_cast<int>(pm_num(doc.find("signal")));
  std::printf("post-mortem bundle: %s\n", path);
  std::printf("reason:        %s",
              reason != nullptr && reason->is_string() ? reason->str.c_str()
                                                       : "?");
  if (signo != 0) std::printf(" (signal %d)", signo);
  if (const json::Value* detail = doc.find("detail");
      detail != nullptr && detail->is_string())
    std::printf("  [%s]", detail->str.c_str());
  std::printf("\n");
  std::printf("at:            %.3fs into the run\n",
              pm_num(doc.find("ts_ns")) / 1e9);

  const json::Value* phase = doc.find("active_phase");
  std::printf("active phase:  %s\n",
              phase != nullptr && phase->is_string() ? phase->str.c_str()
                                                     : "(none)");
  if (const json::Value* stack = doc.find("phase_stack");
      stack != nullptr && stack->is_array() && !stack->array.empty()) {
    std::printf("phase stack:  ");
    for (const json::Value& frame : stack->array)
      if (frame.is_string()) std::printf(" > %s", frame.str.c_str());
    std::printf("\n");
  }

  if (const json::Value* prov = doc.find("provenance");
      prov != nullptr && prov->is_object() && !prov->object.empty()) {
    std::printf("\nprovenance:\n");
    for (const auto& [k, v] : prov->object) {
      if (v.is_string())
        std::printf("  %-14s %s\n", k.c_str(), v.str.c_str());
      else if (v.is_number())
        std::printf("  %-14s %.6g\n", k.c_str(), v.num);
    }
  }

  if (const json::Value* tracer = doc.find("tracer");
      tracer != nullptr && tracer->is_object()) {
    std::printf("\ntracer:        %.0f events recorded, %.0f dropped\n",
                pm_num(tracer->find("recorded")),
                pm_num(tracer->find("dropped")));
  }

  if (const json::Value* hb = doc.find("heartbeat");
      hb != nullptr && hb->is_object()) {
    std::printf("\nlast heartbeat: seq %.0f at %.1fs",
                pm_num(hb->find("seq")), pm_num(hb->find("elapsed_seconds")));
    if (const json::Value* progress = hb->find("progress");
        progress != nullptr && progress->is_object())
      std::printf(", %.0f/%.0f traces captured",
                  pm_num(progress->find("captured")),
                  pm_num(progress->find("total")));
    std::printf("\n");
  }

  if (const json::Value* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_object()) {
    std::printf("\nmetrics:\n");
    if (const json::Value* counters = metrics->find("counters");
        counters != nullptr && counters->is_object())
      for (const auto& [k, v] : counters->object)
        std::printf("  counter   %-38s %.0f\n", k.c_str(), v.num);
    if (const json::Value* gauges = metrics->find("gauges");
        gauges != nullptr && gauges->is_object())
      for (const auto& [k, v] : gauges->object)
        std::printf("  gauge     %-38s %.6g\n", k.c_str(), v.num);
    if (const json::Value* histograms = metrics->find("histograms");
        histograms != nullptr && histograms->is_object())
      for (const auto& [k, v] : histograms->object)
        std::printf("  histogram %-38s count %.0f p50 %.6g p99 %.6g\n",
                    k.c_str(), pm_num(v.find("count")), pm_num(v.find("p50")),
                    pm_num(v.find("p99")));
  }

  if (const json::Value* recorder = doc.find("flight_recorder");
      recorder != nullptr && recorder->is_array()) {
    std::printf("\nflight recorder (%zu records, oldest first):\n",
                recorder->array.size());
    for (const json::Value& rec : recorder->array) {
      if (!rec.is_object()) continue;
      const json::Value* level = rec.find("level");
      const json::Value* subsystem = rec.find("subsystem");
      const json::Value* msg = rec.find("msg");
      std::printf(
          "  [%9.3fs] tid %-3.0f %-5s %-7s %s\n",
          pm_num(rec.find("ts_ns")) / 1e9, pm_num(rec.find("tid")),
          level != nullptr && level->is_string() ? level->str.c_str() : "?",
          subsystem != nullptr && subsystem->is_string()
              ? subsystem->str.c_str()
              : "?",
          msg != nullptr && msg->is_string() ? msg->str.c_str() : "");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  if (std::strcmp(argv[1], "show") == 0 && argc == 3)
    return cmd_show(argv[2]);
  if (std::strcmp(argv[1], "diff") == 0)
    return cmd_diff(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "tail") == 0)
    return cmd_tail(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "watch") == 0)
    return cmd_watch(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "postmortem") == 0 && argc == 3)
    return cmd_postmortem(argv[2]);
  return usage();
}
