// Trace acquisition: simulate the paper's measurement bench — a SASEBO-GIII
// power rail captured by a 100 MHz oscilloscope — for an unprotected and an
// RFTC-protected device, and write the traces to CSV for plotting.
//
//   $ ./examples/trace_acquisition [out_prefix]
//   -> <prefix>unprotected.csv, <prefix>rftc.csv (columns: t_ns, trace0..4)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "rftc/device.hpp"
#include "sched/fixed_clock.hpp"
#include "trace/acquisition.hpp"
#include "util/io.hpp"

namespace {

using namespace rftc;

void capture_and_dump(const std::string& path, const trace::Encryptor& enc,
                      trace::TraceSimulator& sim) {
  Xoshiro256StarStar rng(1);
  const trace::TraceSet set = trace::acquire_random(enc, sim, 5, rng);
  std::vector<std::string> header = {"t_ns"};
  std::vector<std::vector<double>> cols(1 + set.size());
  for (std::size_t s = 0; s < set.samples(); ++s)
    cols[0].push_back(static_cast<double>(s) *
                      static_cast<double>(sim.params().sample_period_ps) /
                      1e3);
  for (std::size_t i = 0; i < set.size(); ++i) {
    header.push_back("trace" + std::to_string(i));
    const auto t = set.trace(i);
    cols[1 + i].assign(t.begin(), t.end());
  }
  write_csv(path, header, cols);
  std::printf("wrote %zu traces x %zu samples -> %s\n", set.size(),
              set.samples(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "";
  const aes::Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};

  // The modelled scope: 500 MS/s, 100 MHz bandwidth, 8-bit ADC.
  trace::PowerModelParams pm;
  std::printf("Oscilloscope model: %.0f MS/s, %.0f MHz BW, %d-bit ADC, "
              "%zu samples/capture\n",
              1e6 / static_cast<double>(pm.sample_period_ps),
              pm.bandwidth_mhz, pm.adc_bits, pm.samples());

  core::ScheduledAesDevice unprot(
      key, std::make_unique<sched::FixedClockScheduler>(48.0));
  trace::TraceSimulator sim_u(pm, 7);
  capture_and_dump(prefix + "unprotected.csv",
                   [&](const aes::Block& pt) { return unprot.encrypt(pt); },
                   sim_u);

  core::RftcDevice rftc_dev = core::RftcDevice::make(key, 3, 64, 11);
  trace::TraceSimulator sim_r(pm, 8);
  capture_and_dump(prefix + "rftc.csv",
                   [&](const aes::Block& pt) { return rftc_dev.encrypt(pt); },
                   sim_r);

  std::printf(
      "\nPlot the two files side by side: the unprotected captures show ten "
      "evenly spaced round pulses ending at ~250 ns; the RFTC captures end "
      "anywhere up to ~875 ns with rounds at varying spacing.\n");
  return 0;
}
