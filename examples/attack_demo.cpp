// Attack demo: mount the paper's CPA attack end-to-end.
//
// Captures traces from an unprotected device and an RFTC(3, 64) device,
// runs last-round CPA, and shows the recovered round-10 key bytes (then
// inverts the key schedule back to the master key) — succeeding against
// the unprotected core and failing against RFTC.
//
//   $ ./examples/attack_demo [n_traces]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "analysis/attacks.hpp"
#include "analysis/convergence.hpp"
#include "obs/checkpoints.hpp"
#include "obs/run_manifest.hpp"
#include "rftc/device.hpp"
#include "sched/fixed_clock.hpp"
#include "trace/acquisition.hpp"

namespace {

using namespace rftc;

void attack(const char* label, const trace::TraceSet& set,
            const aes::Key& true_key, const std::string& stream,
            obs::RunManifest& manifest) {
  const aes::Block rk10 = aes::expand_key(true_key)[10];
  analysis::AttackParams params;
  params.kind = analysis::AttackKind::kCpa;  // attack all 16 bytes
  params.checkpoints = obs::checkpoints_from_env(set.size());
  analysis::ConvergenceMonitor monitor;
  params.monitor = &monitor;
  const analysis::AttackOutcome outcome =
      analysis::run_attack(set, rk10, params);

  // Re-run the engine to show the recovered bytes themselves.
  const trace::TraceSet ds = set.downsampled(params.downsample);
  std::vector<int> bytes(16);
  for (int i = 0; i < 16; ++i) bytes[static_cast<std::size_t>(i)] = i;
  analysis::CpaEngine engine(ds.samples(), bytes);
  for (std::size_t i = 0; i < ds.size(); ++i)
    engine.add(ds.ciphertext(i), ds.trace(i));

  std::printf("\n[%s] %zu traces\n", label, set.size());
  std::printf("  recovered round-10 key: ");
  aes::Block recovered{};
  for (const auto& rep : engine.report()) {
    recovered[static_cast<std::size_t>(rep.byte_pos)] =
        static_cast<std::uint8_t>(rep.best_guess());
    std::printf("%02x", rep.best_guess());
  }
  std::printf("\n  true round-10 key     : ");
  for (const auto b : rk10) std::printf("%02x", b);
  std::printf("\n  mean rank of true key : %.1f\n",
              outcome.mean_rank.back());
  if (outcome.success.back()) {
    const aes::Key master = aes::invert_key_schedule_from_round10(recovered);
    std::printf("  KEY RECOVERED; master key via inverse key schedule: ");
    for (const auto b : master) std::printf("%02x", b);
    std::printf("\n");
  } else {
    std::printf("  attack FAILED (key not recovered)\n");
  }
  std::printf("  convergence (log-spaced checkpoints):\n");
  monitor.print_cpa_table();
  monitor.emit(manifest, stream + ".");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4'000;
  const aes::Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
  trace::PowerModelParams pm;
  obs::RunManifest manifest("attack_demo");
  manifest.provenance().seed = 1;  // base of the capture seeds below

  {
    core::ScheduledAesDevice dev(
        key, std::make_unique<sched::FixedClockScheduler>(48.0));
    trace::TraceSimulator sim(pm, 1);
    Xoshiro256StarStar rng(2);
    const trace::TraceSet set = trace::acquire_random(
        [&](const aes::Block& pt) { return dev.encrypt(pt); }, sim, n, rng);
    attack("Unprotected AES @ 48 MHz", set, key, "unprotected", manifest);
  }
  {
    core::RftcDevice dev = core::RftcDevice::make(key, 3, 64, 3);
    trace::TraceSimulator sim(pm, 4);
    Xoshiro256StarStar rng(5);
    const trace::TraceSet set = trace::acquire_random(
        [&](const aes::Block& pt) { return dev.encrypt(pt); }, sim, n, rng);
    attack("RFTC(3, 64)", set, key, "rftc_3_64", manifest);
  }
  manifest.final_metric("traces", static_cast<double>(n), "traces");
  manifest.write();
  std::printf("\nrun manifest: %s\n", manifest.path().c_str());
  return 0;
}
