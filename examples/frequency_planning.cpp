// Frequency planning: run the design-time half of RFTC by hand and inspect
// what it produces — MMCM attribute sets, achieved frequencies, DRP write
// sequences and Block RAM cost.
//
//   $ ./examples/frequency_planning [M] [P]
#include <cstdio>
#include <cstdlib>

#include "clocking/block_ram.hpp"
#include "rftc/frequency_planner.hpp"
#include "util/time_types.hpp"

int main(int argc, char** argv) {
  using namespace rftc;
  const int m = argc > 1 ? std::atoi(argv[1]) : 3;
  const int p = argc > 2 ? std::atoi(argv[2]) : 32;

  core::PlannerParams params;
  params.m_outputs = m;
  params.p_configs = p;
  params.seed = 42;
  std::printf("Planning RFTC(%d, %d): %.3f-%.3f MHz grid @ %.3f MHz, "
              "fin %.0f MHz, R=%d rounds\n",
              m, p, params.f_min_mhz, params.f_max_mhz, params.grid_step_mhz,
              params.fin_mhz, params.rounds);

  const core::FrequencyPlan plan = core::plan_frequencies(params);
  std::printf("Planned %zu sets (%llu candidate sets rejected for "
              "completion-time overlap)\n",
              plan.p(),
              static_cast<unsigned long long>(plan.rejected_sets));
  std::printf("Total completion times: %llu = P x C(R+M-1, R) = %d x %llu\n",
              static_cast<unsigned long long>(plan.total_completion_times()),
              p,
              static_cast<unsigned long long>(
                  core::completion_times_per_set(m, params.rounds)));
  std::printf("Distinct frequencies across plan: %zu\n",
              plan.distinct_frequencies());

  std::printf("\nFirst sets (CLKFBOUT_MULT_F / DIVCLK; per-output divider -> "
              "frequency):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(plan.p(), 5); ++i) {
    const auto& cfg = plan.configs[i];
    std::printf("  set %2zu: M=%6.3f D=%d VCO=%7.2f MHz |", i,
                cfg.mult_8ths / 8.0, cfg.divclk, cfg.vco_mhz());
    for (int k = 0; k < m; ++k)
      std::printf(" O%d=%7.3f->%7.3f MHz", k,
                  cfg.out_div_8ths[static_cast<std::size_t>(k)] / 8.0,
                  cfg.output_mhz(k));
    std::printf("\n");
  }

  const clk::ConfigStore store(plan.configs);
  std::printf("\nBlock RAM cost: %zu configs x %zu DRP words = %llu bits "
              "-> %u RAMB36E1\n",
              store.config_count(), store.fetch(0).size(),
              static_cast<unsigned long long>(store.stored_bits()),
              store.ramb36_count());

  std::printf("\nDRP write sequence for set 0 (addr: data/mask):\n ");
  for (const auto& w : store.fetch(0))
    std::printf(" %02x:%04x/%04x", w.addr, w.data, w.mask);
  std::printf("\n");
  return 0;
}
