// Protected session: encrypt a realistic multi-block message in CBC and
// CTR mode through the RFTC-protected device, as a firmware image or
// telemetry stream on the SASEBO-class board would be.
//
// Every single block encryption runs at fresh randomized frequencies, yet
// the output is byte-identical to software AES — the countermeasure is
// invisible to the protocol.
//
//   $ ./examples/protected_session
#include <cstdio>
#include <cstring>
#include <string>

#include "aes/modes.hpp"
#include "rftc/device.hpp"
#include "util/histogram.hpp"

int main() {
  using namespace rftc;
  const aes::Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
  const aes::Block iv = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                         0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F};

  core::RftcDevice device = core::RftcDevice::make(key, 3, 64, 7);
  ExactHistogram timings;
  auto protected_enc = [&](const aes::Block& b) {
    const core::EncryptionRecord rec = device.encrypt(b);
    timings.add(rec.schedule.completion_ps());
    return rec.ciphertext;
  };

  const std::string message =
      "RFTC keeps the ciphertext identical while every round's clock "
      "frequency is drawn from thousands of candidates.....";  // 128 bytes
  std::vector<std::uint8_t> msg(message.begin(), message.end());
  msg.resize(128, '.');

  // CBC over the protected device, verified against software AES.
  const auto ct_hw = aes::cbc_encrypt(protected_enc, iv, msg);
  const auto ct_sw = aes::cbc_encrypt(aes::software_encryptor(key), iv, msg);
  std::printf("CBC, 8 blocks through RFTC(3, 64): %s software AES\n",
              ct_hw == ct_sw ? "identical to" : "DIFFERS FROM");
  const auto pt_back = aes::cbc_decrypt(key, iv, ct_hw);
  std::printf("CBC decrypt round-trip: %s\n",
              pt_back == msg ? "ok" : "FAILED");

  // CTR keystream for a 100-byte datagram (partial final block).
  std::vector<std::uint8_t> datagram(100, 0x42);
  const auto ctr_ct = aes::ctr_crypt(protected_enc, iv, datagram);
  const auto ctr_rt =
      aes::ctr_crypt(aes::software_encryptor(key), iv, ctr_ct);
  std::printf("CTR 100-byte datagram round-trip: %s\n",
              ctr_rt == datagram ? "ok" : "FAILED");

  std::printf("\nBlock encryptions performed: %llu\n",
              static_cast<unsigned long long>(timings.total()));
  std::printf("Distinct completion times   : %zu (a fixed-clock core would "
              "show exactly 1)\n",
              timings.distinct());
  return 0;
}
