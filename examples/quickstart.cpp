// Quickstart: build an RFTC-protected AES device, encrypt a few blocks, and
// see the countermeasure at work — correct ciphertexts, randomized
// completion times.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "fault/fault_spec.hpp"
#include "rftc/device.hpp"
#include "util/time_types.hpp"

int main() {
  using namespace rftc;

  // 1. A secret key (FIPS-197 example key).
  const aes::Key key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};

  // 2. An RFTC(3, 64) device: the planner chooses 64 overlap-free sets of
  //    3 MMCM output frequencies in 12-48 MHz; two modelled MMCMs
  //    ping-pong through DRP reconfiguration at runtime.  Fault injection
  //    (docs/ROBUSTNESS.md) is read from RFTC_FAULT_* and disarmed unless
  //    set — try RFTC_FAULT_LOCK_LOSS=0.5 to watch the recovery policy.
  const std::uint64_t seed = 2024;
  core::PlannerParams pp;
  pp.m_outputs = 3;
  pp.p_configs = 64;
  pp.seed = seed;
  core::ControllerParams cp;
  cp.lfsr_seed_lo = seed * 0x9E3779B97F4A7C15ULL + 1;
  cp.lfsr_seed_hi = seed ^ 0xDEADBEEFCAFEBABEULL;
  cp.faults = fault::FaultSpec::from_env();
  core::RftcDevice device(key, core::plan_frequencies(pp), cp);
  std::printf("Device: %s\n", device.controller().name().c_str());
  std::printf("Plan: %llu possible completion times\n",
              static_cast<unsigned long long>(
                  device.controller().plan().total_completion_times()));

  // 3. Encrypt: functionally plain AES-128, physically randomized.
  const aes::Block pt = {0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
                         0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34};
  std::printf("\n%-4s %-34s %s\n", "#", "ciphertext", "completion");
  for (int i = 0; i < 8; ++i) {
    const core::EncryptionRecord rec = device.encrypt(pt);
    std::printf("%-4d ", i);
    for (const auto b : rec.ciphertext) std::printf("%02x", b);
    std::printf("   %7.2f ns\n", to_ns(rec.schedule.completion_ps()));
  }
  std::printf("\nSame plaintext, same ciphertext (39 25 84 1d ...), but the "
              "completion time changes every run:\nthat timing spread is "
              "what misaligns power traces and defeats CPA.\n");

  // 4. Peek at the runtime machinery.
  const auto& stats = device.controller().stats();
  std::printf("\nController stats: %llu encryptions, %llu MMCM "
              "reconfigurations, last reconfig %.1f us (mean %.1f us)\n",
              static_cast<unsigned long long>(stats.encryptions()),
              static_cast<unsigned long long>(stats.reconfigurations()),
              to_us(stats.last_reconfig_duration_ps()),
              stats.mean_reconfig_duration_ps() / 1e6);
  if (cp.faults.any())
    std::printf("Recovery: %llu lock failures, %llu retries, %llu "
                "fallbacks (clock stayed locked: %s)\n",
                static_cast<unsigned long long>(stats.lock_failures()),
                static_cast<unsigned long long>(stats.recovery_retries()),
                static_cast<unsigned long long>(stats.fallbacks()),
                device.controller().active_locked() ? "yes" : "NO");
  return 0;
}
